//! Observability don't-care (ODC) masks and gate observabilities over
//! the time-frame expanded circuit — the logic-masking half of the SER
//! model (paper §II.A–B, following refs \[11\], \[17\], \[21\]).
//!
//! `obs(g) = |O(g)| / K`, where `O(g)` marks the simulation vectors in
//! which flipping `g`'s output would be visible at a primary output of
//! any recorded frame or at a register input of the last frame.
//!
//! The masks are computed by the standard backward composition: a
//! gate's ODC is the union over its fanouts of the fanout's ODC ANDed
//! with the fanout's *sensitivity* to the gate (re-evaluation with the
//! gate's signature flipped). Reconvergent fanout makes this an
//! approximation; [`exact_fault_injection`] provides the exact
//! (quadratic-cost) reference used to validate it in tests.
//!
//! # Engine
//!
//! ODC masks live in one flat `slots × words` buffer per frame, walked
//! level by level in *reverse* [`Levelization`](netlist::Levelization)
//! order (a gate's fanouts all sit on strictly higher levels, so each
//! level's masks only read already-finalized higher slots — the mirror
//! image of the forward simulator's `split_at_mut` scheme). The
//! sensitivity product is fused: instead of materializing a flipped
//! signature and a faulty re-evaluation per (gate, fanout) pair, the
//! fast path ORs `odc(h) & (faulty ^ value(h))` into the accumulator a
//! whole cache block at a time via the batched `accumulate_sensitivity`
//! kernel (per-kind word loops, flips as XOR masks), keeping each
//! accumulator block hot across all of a gate's fanouts — zero
//! allocations per frame. The word-at-a-time `eval_gate_word`
//! evaluation survives as the audit oracle.
//!
//! Determinism, the sampled audits, the circuit breaker and the scalar
//! fallback follow the forward engine (see [`crate::sim`]) — with one
//! strengthening: because the blocked kernel differs structurally from
//! the oracle even without threads, one level per frame is audited in
//! *every* run, not just multi-threaded ones. Trips land in
//! [`Observability::engine`], merged with the trace's own report.

use netlist::{parallel, Circuit, GateId, GateKind, Levelization};

use crate::scalar::ScalarTrace;
use crate::signature::{accumulate_sensitivity, eval_gate_word, Signature};
use crate::sim::{eval_slots, EngineReport, EvalPlan, FrameTrace, SimConfig};

/// Words per cache block of the blocked ODC accumulation: 16 × 8 =
/// 128 bytes of accumulator stay register/L1-resident across all of a
/// gate's fanouts instead of streaming the whole row once per fanout.
/// With ≤ 1024 vectors a row is a single block and the blocked path
/// degenerates to the plain row loop.
const ODC_BLOCK_WORDS: usize = 16;

/// Magic seed that makes a multi-threaded ODC pass deliberately
/// corrupt one worker's output in the audited level of the first
/// processed (= last recorded) frame — a test hook for the
/// circuit-breaker fallback path.
#[doc(hidden)]
pub const SABOTAGE_ODC_SEED: u64 = 0x5AB0_7A6E_0D0C;

/// One fanout's contribution to a gate's ODC accumulation.
#[derive(Debug)]
enum OdcFanout {
    /// The fanout is a register capturing the gate: OR in the next
    /// frame's ODC of register `ri` (or everything, in the last frame).
    Reg(usize),
    /// A combinational fanout: OR in `odc(h) & sensitivity(h, g)`,
    /// where the sensitivity is evaluated word-by-word with the
    /// `flip`-marked fanins inverted on the fly.
    Comb {
        h_slot: u32,
        kind: GateKind,
        fanins: Box<[(u32, bool)]>,
    },
}

/// Per-slot accumulation plan, in levelization slot order.
#[derive(Debug)]
struct OdcSlot {
    /// Primary-output markers start fully observable.
    start_ones: bool,
    fanouts: Box<[OdcFanout]>,
}

fn build_odc_plan(circuit: &Circuit, levels: &Levelization) -> Vec<OdcSlot> {
    (0..circuit.len())
        .map(|s| {
            let g = levels.gate_at(s);
            let start_ones = circuit.gate(g).kind() == GateKind::Output;
            let fanouts = circuit
                .fanouts(g)
                .iter()
                .map(|&h| {
                    let hg = circuit.gate(h);
                    if hg.kind() == GateKind::Dff {
                        // Register slots are 0..R in `registers()` order.
                        OdcFanout::Reg(levels.slot_of(h))
                    } else {
                        OdcFanout::Comb {
                            h_slot: levels.slot_of(h) as u32,
                            kind: hg.kind(),
                            fanins: hg
                                .fanins()
                                .iter()
                                .map(|&x| (levels.slot_of(x) as u32, x == g))
                                .collect(),
                        }
                    }
                })
                .collect();
            OdcSlot {
                start_ones,
                fanouts,
            }
        })
        .collect()
}

/// The fast path: accumulates the ODC masks of slots
/// `lo..lo + out.len()/wps` into `out`, cache-blocked over the word
/// dimension and using the batched [`accumulate_sensitivity`] kernel
/// (gate-kind dispatch hoisted out of the word loop, flips as XOR
/// masks). Bit-identical to [`odc_slots_serial`] — which stays the
/// audit oracle — because every operation is an exact bitwise function
/// with no cross-word dependencies.
#[allow(clippy::too_many_arguments)]
fn odc_slots_blocked<'a>(
    plan: &[OdcSlot],
    wps: usize,
    values: &'a [u64],
    odc_right: &[u64],
    right_base: usize,
    next_reg: &[u64],
    last_frame: bool,
    out: &mut [u64],
    lo: usize,
    pairs: &mut Vec<(&'a [u64], bool)>,
) {
    let slots = out.len() / wps;
    for i in 0..slots {
        let s = lo + i;
        let acc = &mut out[i * wps..(i + 1) * wps];
        let init = if plan[s].start_ones { u64::MAX } else { 0 };
        let mut b0 = 0;
        while b0 < wps {
            let b1 = (b0 + ODC_BLOCK_WORDS).min(wps);
            let ab = &mut acc[b0..b1];
            ab.fill(init);
            for fo in plan[s].fanouts.iter() {
                match fo {
                    OdcFanout::Reg(ri) => {
                        if last_frame {
                            ab.fill(u64::MAX);
                        } else {
                            let nr = &next_reg[ri * wps + b0..ri * wps + b1];
                            for (a, b) in ab.iter_mut().zip(nr) {
                                *a |= b;
                            }
                        }
                    }
                    OdcFanout::Comb {
                        h_slot,
                        kind,
                        fanins,
                    } => {
                        pairs.clear();
                        for &(fs, flip) in fanins.iter() {
                            let o = fs as usize * wps;
                            pairs.push((&values[o + b0..o + b1], flip));
                        }
                        let hs = *h_slot as usize;
                        let ho = (hs - right_base) * wps;
                        accumulate_sensitivity(
                            *kind,
                            pairs,
                            &odc_right[ho + b0..ho + b1],
                            &values[hs * wps + b0..hs * wps + b1],
                            ab,
                        );
                    }
                }
            }
            b0 = b1;
        }
    }
}

/// Serially accumulates the ODC masks of slots `lo..lo + out.len()/wps`
/// into `out` — the word-at-a-time reference implementation behind the
/// sampled audits and debug differential checks of the blocked fast
/// path. `odc_right` holds the finalized masks of slots
/// `right_base..`, `values` the nominal signatures of the frame, and
/// `next_reg` the register ODCs of the following frame.
#[allow(clippy::too_many_arguments)]
fn odc_slots_serial<'a>(
    plan: &[OdcSlot],
    wps: usize,
    values: &'a [u64],
    odc_right: &[u64],
    right_base: usize,
    next_reg: &[u64],
    last_frame: bool,
    out: &mut [u64],
    lo: usize,
    pairs: &mut Vec<(&'a [u64], bool)>,
) {
    let slots = out.len() / wps;
    for i in 0..slots {
        let s = lo + i;
        let acc = &mut out[i * wps..(i + 1) * wps];
        acc.fill(if plan[s].start_ones { u64::MAX } else { 0 });
        for fo in plan[s].fanouts.iter() {
            match fo {
                OdcFanout::Reg(ri) => {
                    if last_frame {
                        // The register input of the last frame is an
                        // observation point: unconditionally visible.
                        acc.fill(u64::MAX);
                    } else {
                        let nr = &next_reg[ri * wps..][..wps];
                        for (a, b) in acc.iter_mut().zip(nr) {
                            *a |= b;
                        }
                    }
                }
                OdcFanout::Comb {
                    h_slot,
                    kind,
                    fanins,
                } => {
                    pairs.clear();
                    for &(fs, flip) in fanins.iter() {
                        let o = fs as usize * wps;
                        pairs.push((&values[o..o + wps], flip));
                    }
                    let hs = *h_slot as usize;
                    let h_odc = &odc_right[(hs - right_base) * wps..][..wps];
                    let h_val = &values[hs * wps..][..wps];
                    for (w, a) in acc.iter_mut().enumerate() {
                        let faulty = eval_gate_word(*kind, pairs, w);
                        *a |= h_odc[w] & (faulty ^ h_val[w]);
                    }
                }
            }
        }
    }
}

/// Accumulates one reverse pass over slots `lo..hi` of `odc` in place,
/// fanning the range across scoped workers when it is large enough.
/// `sabotage` deliberately corrupts the first worker's chunk (test
/// hook).
#[allow(clippy::too_many_arguments)]
fn odc_pass(
    plan: &[OdcSlot],
    wps: usize,
    values: &[u64],
    odc: &mut [u64],
    lo: usize,
    hi: usize,
    next_reg: &[u64],
    last_frame: bool,
    workers: usize,
    sabotage: bool,
) {
    let n = hi - lo;
    let (left, right) = odc.split_at_mut(hi * wps);
    let cur = &mut left[lo * wps..];
    let workers = parallel::clamp_workers(workers, n);
    if workers <= 1 {
        let mut pairs = Vec::with_capacity(8);
        odc_slots_blocked(
            plan, wps, values, right, hi, next_reg, last_frame, cur, lo, &mut pairs,
        );
        if sabotage {
            cur[0] ^= 1;
        }
        return;
    }
    let chunk_slots = n.div_ceil(workers);
    let right: &[u64] = right;
    std::thread::scope(|scope| {
        for (ci, chunk) in cur.chunks_mut(chunk_slots * wps).enumerate() {
            scope.spawn(move || {
                let mut pairs = Vec::with_capacity(8);
                odc_slots_blocked(
                    plan,
                    wps,
                    values,
                    right,
                    hi,
                    next_reg,
                    last_frame,
                    chunk,
                    lo + ci * chunk_slots,
                    &mut pairs,
                );
                if sabotage && ci == 0 {
                    chunk[0] ^= 1;
                }
            });
        }
    });
}

/// Recomputes slots `lo..hi` serially and compares them with what the
/// (possibly parallel) pass wrote. Returns `true` when identical.
#[allow(clippy::too_many_arguments)]
fn verify_pass(
    plan: &[OdcSlot],
    wps: usize,
    values: &[u64],
    odc: &[u64],
    lo: usize,
    hi: usize,
    next_reg: &[u64],
    last_frame: bool,
) -> bool {
    let mut scratch = vec![0u64; (hi - lo) * wps];
    let mut pairs = Vec::with_capacity(8);
    odc_slots_serial(
        plan,
        wps,
        values,
        &odc[hi * wps..],
        hi,
        next_reg,
        last_frame,
        &mut scratch,
        lo,
        &mut pairs,
    );
    odc[lo * wps..hi * wps] == scratch[..]
}

/// Deterministically samples the level to audit for a frame (0 is the
/// layer-0 source region, processed last).
fn audit_pass(frame: usize, num_levels: usize) -> usize {
    frame.wrapping_mul(0x9E37_79B9) % num_levels
}

/// Per-gate observabilities derived from a frame trace.
#[derive(Debug, Clone)]
pub struct Observability {
    obs: Vec<f64>,
    frame0_odc: Vec<Signature>,
    engine: EngineReport,
}

impl Observability {
    /// Computes observabilities from a simulated trace.
    pub fn compute(circuit: &Circuit, trace: &FrameTrace) -> Self {
        let config = *trace.config();
        let bits = config.num_vectors;
        let frames = trace.frames();
        let wps = bits / 64;
        let levels = trace.levels();
        let slots = levels.num_gates();
        let r = levels.num_registers();
        let s0 = levels.level_slots(0).end;
        let num_levels = levels.num_levels();
        let plan = build_odc_plan(circuit, levels);
        let threads = parallel::resolve_workers(config.threads);
        let sabotage_run = config.seed == SABOTAGE_ODC_SEED && threads > 1;
        let mut engine = EngineReport {
            threads,
            ..EngineReport::default()
        };

        // ODC masks of the current frame (being computed) and register
        // ODCs of the next frame (already computed).
        let mut odc = vec![0u64; slots * wps];
        let mut next_reg = vec![0u64; r * wps];
        let mut tripped = false;

        'frames: for f in (0..frames).rev() {
            let last = f == frames - 1;
            let values = trace.arena().frame(f);
            odc.fill(0);
            let audit = audit_pass(f, num_levels);
            let sab_pass = if sabotage_run && last {
                Some(audit)
            } else {
                None
            };
            // Backward over the combinational levels, then the layer-0
            // source region (registers, inputs, constants).
            for l in (1..num_levels).rev() {
                let lr = levels.level_slots(l);
                odc_pass(
                    &plan,
                    wps,
                    values,
                    &mut odc,
                    lr.start,
                    lr.end,
                    &next_reg,
                    last,
                    threads,
                    sab_pass == Some(l),
                );
                // The blocked fast path differs structurally from the
                // word-oracle even single-threaded, so the debug
                // differential runs regardless of thread count.
                #[cfg(debug_assertions)]
                if sab_pass.is_none() {
                    debug_assert!(
                        verify_pass(&plan, wps, values, &odc, lr.start, lr.end, &next_reg, last),
                        "blocked ODC level {l} diverged from serial evaluation"
                    );
                }
            }
            odc_pass(
                &plan,
                wps,
                values,
                &mut odc,
                0,
                s0,
                &next_reg,
                last,
                threads,
                sab_pass == Some(0),
            );
            #[cfg(debug_assertions)]
            if sab_pass.is_none() {
                debug_assert!(
                    verify_pass(&plan, wps, values, &odc, 0, s0, &next_reg, last),
                    "blocked ODC source region diverged from serial evaluation"
                );
            }
            // One sampled level per frame is always re-derived with
            // the word-oracle — the circuit breaker covers the blocked
            // kernel itself, not just worker divergence, so it runs
            // even single-threaded.
            {
                engine.audited_layers += 1;
                let (alo, ahi) = if audit == 0 {
                    (0, s0)
                } else {
                    let ar = levels.level_slots(audit);
                    (ar.start, ar.end)
                };
                if !verify_pass(&plan, wps, values, &odc, alo, ahi, &next_reg, last) {
                    engine.trips += 1;
                    tripped = true;
                    break 'frames;
                }
            }
            // Register outputs act as frame sources; record their ODCs
            // for the previous (earlier) frame's pass.
            next_reg.copy_from_slice(&odc[..r * wps]);
        }

        if tripped {
            // Circuit breaker: recompute with the scalar reference
            // engine against the (already validated) trace values.
            let st = ScalarTrace::from_trace(circuit, trace);
            let (obs, frame0_odc) = crate::scalar::observability(circuit, &st);
            engine.scalar_fallback = true;
            return Self {
                obs,
                frame0_odc,
                engine: trace.engine().merged(engine),
            };
        }

        let mut obs = vec![0.0; circuit.len()];
        let mut frame0_odc = Vec::with_capacity(circuit.len());
        for (id, _) in circuit.iter() {
            let s = levels.slot_of(id);
            let words = &odc[s * wps..(s + 1) * wps];
            let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
            obs[id.index()] = ones as f64 / bits as f64;
            frame0_odc.push(Signature::from_words(words.to_vec()));
        }
        Self {
            obs,
            frame0_odc,
            engine: trace.engine().merged(engine),
        }
    }

    /// `obs(g)`: fraction of vectors in which `g` is observable,
    /// evaluated for the frame-0 copy of the gate.
    pub fn obs(&self, gate: GateId) -> f64 {
        self.obs[gate.index()]
    }

    /// The frame-0 ODC mask of a gate.
    pub fn odc_mask(&self, gate: GateId) -> &Signature {
        &self.frame0_odc[gate.index()]
    }

    /// All observabilities, indexed by gate.
    pub fn as_slice(&self) -> &[f64] {
        &self.obs
    }

    /// Engine diagnostics (simulation + ODC merged): thread count,
    /// audits and circuit-breaker activity.
    pub fn engine(&self) -> &EngineReport {
        &self.engine
    }
}

/// Exact observability by per-gate fault injection: flips the gate's
/// output in frame 0 and fully resimulates the `n`-frame window,
/// recording the vectors in which any primary output of any frame (or
/// any register input of the last frame) differs. Quadratic cost —
/// intended for validation on small circuits; the victims are fanned
/// across scoped workers ([`SimConfig::threads`]) and each worker
/// reuses one pair of frame buffers across all its victims.
pub fn exact_fault_injection(circuit: &Circuit, config: SimConfig) -> Vec<f64> {
    let trace = FrameTrace::simulate(circuit, config);
    let n = circuit.len();
    let levels = trace.levels();
    let plan = EvalPlan::new(circuit, levels);
    let wps = config.num_vectors / 64;
    let slots = levels.num_gates();
    let workers = parallel::resolve_workers_for(config.threads, n);
    let mut result = vec![0.0; n];
    let chunk = n.div_ceil(workers);
    let trace = &trace;
    let plan = &plan;
    std::thread::scope(|scope| {
        for (ci, out) in result.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let mut faulty = vec![0u64; slots * wps];
                let mut prev = vec![0u64; slots * wps];
                let mut detected = vec![0u64; wps];
                for (vi, res) in out.iter_mut().enumerate() {
                    let victim = GateId::new(ci * chunk + vi);
                    *res = inject(trace, plan, victim, &mut faulty, &mut prev, &mut detected);
                }
            });
        }
    });
    result
}

/// Resimulates the full window with `victim` flipped in frame 0 and
/// returns the detection density.
fn inject(
    trace: &FrameTrace,
    plan: &EvalPlan,
    victim: GateId,
    faulty: &mut Vec<u64>,
    prev: &mut Vec<u64>,
    detected: &mut [u64],
) -> f64 {
    let levels = trace.levels();
    let config = trace.config();
    let wps = config.num_vectors / 64;
    let frames = config.frames;
    let vslot = levels.slot_of(victim);
    if plan.kinds[vslot] == GateKind::Output {
        return 1.0;
    }
    let vlevel = levels.level_of(victim);
    detected.fill(0);
    for f in 0..frames {
        let nominal = trace.arena().frame(f);
        if f == 0 {
            // Faulty values start as copies of the nominal trace, with
            // the victim flipped (source victims keep the flip; a
            // combinational victim is re-flipped after its level).
            faulty.copy_from_slice(nominal);
            for w in &mut faulty[vslot * wps..(vslot + 1) * wps] {
                *w = !*w;
            }
        } else {
            // Register outputs take the previous faulty frame's D;
            // inputs and constants keep nominal values.
            std::mem::swap(prev, faulty);
            faulty.copy_from_slice(nominal);
            for (i, &d) in plan.reg_d_slots.iter().enumerate() {
                faulty[i * wps..(i + 1) * wps].copy_from_slice(&prev[d * wps..(d + 1) * wps]);
            }
        }
        for l in 1..levels.num_levels() {
            let lr = levels.level_slots(l);
            let (lo_part, rest) = faulty.split_at_mut(lr.start * wps);
            let cur = &mut rest[..(lr.end - lr.start) * wps];
            eval_slots(plan, wps, lo_part, cur, lr.start);
            if f == 0 && l == vlevel {
                let off = (vslot - lr.start) * wps;
                for w in &mut cur[off..off + wps] {
                    *w = !*w;
                }
            }
        }
        for &po in &plan.output_slots {
            let fa = &faulty[po * wps..][..wps];
            let no = &nominal[po * wps..][..wps];
            for ((d, a), b) in detected.iter_mut().zip(fa).zip(no) {
                *d |= a ^ b;
            }
        }
        if f == frames - 1 {
            for &ds in &plan.reg_d_slots {
                let fa = &faulty[ds * wps..][..wps];
                let no = &nominal[ds * wps..][..wps];
                for ((d, a), b) in detected.iter_mut().zip(fa).zip(no) {
                    *d |= a ^ b;
                }
            }
        }
    }
    let ones: u64 = detected.iter().map(|w| w.count_ones() as u64).sum();
    ones as f64 / config.num_vectors as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, CircuitBuilder};

    #[test]
    fn po_drivers_fully_observable() {
        let mut b = CircuitBuilder::new("chain");
        b.input("a");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::Buf, &["x"]).unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("y").unwrap()), 1.0);
        assert_eq!(o.obs(c.find("x").unwrap()), 1.0, "buffers pass everything");
        assert_eq!(o.obs(c.find("a").unwrap()), 1.0);
    }

    #[test]
    fn and_gate_masks_when_sibling_is_zero() {
        let mut b = CircuitBuilder::new("mask");
        b.input("a");
        b.constant("zero", false).unwrap();
        b.gate("x", GateKind::And, &["a", "zero"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("a").unwrap()), 0.0, "AND with 0 masks a");
        // Flipping the constant to 1 makes the AND transparent to `a`,
        // so the constant is observable exactly when a = 1 (≈ half the
        // vectors).
        let zero_obs = o.obs(c.find("zero").unwrap());
        assert!((0.4..0.6).contains(&zero_obs), "got {zero_obs}");
    }

    #[test]
    fn xor_gates_never_mask() {
        let mut b = CircuitBuilder::new("xor");
        b.input("a");
        b.input("bb");
        b.gate("x", GateKind::Xor, &["a", "bb"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("a").unwrap()), 1.0);
        assert_eq!(o.obs(c.find("bb").unwrap()), 1.0);
    }

    #[test]
    fn matches_exact_on_tree_circuit() {
        // Fanout-free cone: the composition rule is exact.
        let mut b = CircuitBuilder::new("tree");
        b.input("a");
        b.input("b2");
        b.input("c2");
        b.input("d2");
        b.gate("x", GateKind::And, &["a", "b2"]).unwrap();
        b.gate("y", GateKind::Or, &["c2", "d2"]).unwrap();
        b.gate("z", GateKind::Nand, &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let c = b.build().unwrap();
        let cfg = SimConfig::small();
        let t = FrameTrace::simulate(&c, cfg);
        let o = Observability::compute(&c, &t);
        let exact = exact_fault_injection(&c, cfg);
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            assert!(
                (o.obs(id) - exact[id.index()]).abs() < 1e-12,
                "{}: approx {} vs exact {}",
                gate.name(),
                o.obs(id),
                exact[id.index()]
            );
        }
    }

    #[test]
    fn close_to_exact_on_sequential_circuit() {
        let c = samples::s27_like();
        let cfg = SimConfig::small();
        let t = FrameTrace::simulate(&c, cfg);
        let o = Observability::compute(&c, &t);
        let exact = exact_fault_injection(&c, cfg);
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            let diff = (o.obs(id) - exact[id.index()]).abs();
            assert!(
                diff <= 0.35,
                "{}: approx {} vs exact {} (reconvergence error too large)",
                gate.name(),
                o.obs(id),
                exact[id.index()]
            );
        }
        // And on average they should be close.
        let avg_diff: f64 = c
            .iter()
            .map(|(id, _)| (o.obs(id) - exact[id.index()]).abs())
            .sum::<f64>()
            / c.len() as f64;
        assert!(avg_diff < 0.12, "average deviation {avg_diff}");
    }

    #[test]
    fn single_frame_makes_register_drivers_observable() {
        // With n = 1 every register input is an observation point, so
        // every register's driving gate is fully observable.
        let c = samples::s27_like();
        let o = Observability::compute(
            &c,
            &FrameTrace::simulate(
                &c,
                SimConfig {
                    frames: 1,
                    ..SimConfig::small()
                },
            ),
        );
        for &q in c.registers() {
            let d = c.gate(q).fanins()[0];
            assert_eq!(o.obs(d), 1.0, "driver of {}", c.gate(q).name());
        }
    }

    #[test]
    fn dead_gate_has_zero_observability() {
        let mut b = CircuitBuilder::new("dead");
        b.input("a");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("dead", GateKind::Not, &["a"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("dead").unwrap()), 0.0);
    }

    #[test]
    fn matches_scalar_observability_bit_for_bit() {
        for (name, c) in [
            ("s27", samples::s27_like()),
            ("fig1", samples::fig1_like()),
            ("pipeline", samples::pipeline(7, 2)),
        ] {
            let cfg = SimConfig::small();
            let trace = FrameTrace::simulate(&c, cfg);
            let o = Observability::compute(&c, &trace);
            let st = ScalarTrace::from_trace(&c, &trace);
            let (obs, frame0) = crate::scalar::observability(&c, &st);
            for (id, _) in c.iter() {
                assert_eq!(o.obs(id), obs[id.index()], "{name}: obs of {id}");
                assert_eq!(o.odc_mask(id), &frame0[id.index()], "{name}: mask of {id}");
            }
            assert!(o.engine().is_clean());
        }
    }

    #[test]
    fn threaded_odc_is_bit_identical() {
        let c = samples::fig1_like();
        let base = Observability::compute(&c, &FrameTrace::simulate(&c, SimConfig::small()));
        for threads in [2, 7] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::small()
            };
            let o = Observability::compute(&c, &FrameTrace::simulate(&c, cfg));
            assert!(o.engine().is_clean(), "threads={threads}");
            assert!(o.engine().audited_layers > 0, "threads={threads}");
            for (id, _) in c.iter() {
                assert_eq!(o.obs(id), base.obs(id), "threads={threads}");
                assert_eq!(o.odc_mask(id), base.odc_mask(id), "threads={threads}");
            }
        }
    }

    #[test]
    fn sabotaged_odc_trips_breaker_and_falls_back() {
        let c = samples::fig1_like();
        let cfg = SimConfig {
            seed: SABOTAGE_ODC_SEED,
            threads: 2,
            ..SimConfig::small()
        };
        let trace = FrameTrace::simulate(&c, cfg);
        assert!(trace.engine().is_clean(), "sim must not be sabotaged");
        let o = Observability::compute(&c, &trace);
        assert_eq!(o.engine().trips, 1, "sabotage must trip the ODC audit");
        assert!(o.engine().scalar_fallback);
        // The fallback result is the scalar engine's, bit for bit.
        let st = ScalarTrace::from_trace(&c, &trace);
        let (obs, frame0) = crate::scalar::observability(&c, &st);
        for (id, _) in c.iter() {
            assert_eq!(o.obs(id), obs[id.index()]);
            assert_eq!(o.odc_mask(id), &frame0[id.index()]);
        }
        // The same seed single-threaded is not sabotaged and agrees.
        let o1 = Observability::compute(
            &c,
            &FrameTrace::simulate(&c, SimConfig { threads: 1, ..cfg }),
        );
        assert!(o1.engine().is_clean());
        for (id, _) in c.iter() {
            assert_eq!(o.obs(id), o1.obs(id));
        }
    }

    #[test]
    fn exact_injection_matches_scalar_reference() {
        for (name, c) in [("s27", samples::s27_like()), ("fig1", samples::fig1_like())] {
            let cfg = SimConfig::small();
            let arena = exact_fault_injection(&c, cfg);
            let scalar = crate::scalar::exact_fault_injection(&c, cfg);
            assert_eq!(arena, scalar, "{name}");
            // And threaded injection agrees too.
            let threaded = exact_fault_injection(&c, SimConfig { threads: 3, ..cfg });
            assert_eq!(threaded, scalar, "{name} threaded");
        }
    }
}
