//! Observability don't-care (ODC) masks and gate observabilities over
//! the time-frame expanded circuit — the logic-masking half of the SER
//! model (paper §II.A–B, following refs \[11\], \[17\], \[21\]).
//!
//! `obs(g) = |O(g)| / K`, where `O(g)` marks the simulation vectors in
//! which flipping `g`'s output would be visible at a primary output of
//! any recorded frame or at a register input of the last frame.
//!
//! The masks are computed by the standard backward composition: a
//! gate's ODC is the union over its fanouts of the fanout's ODC ANDed
//! with the fanout's *sensitivity* to the gate (re-evaluation with the
//! gate's signature flipped). Reconvergent fanout makes this an
//! approximation; [`exact_fault_injection`] provides the exact
//! (quadratic-cost) reference used to validate it in tests.

use netlist::{Circuit, GateId, GateKind};

use crate::signature::{eval_gate, Signature};
use crate::sim::{FrameTrace, SimConfig};

/// Per-gate observabilities derived from a frame trace.
#[derive(Debug, Clone)]
pub struct Observability {
    obs: Vec<f64>,
    frame0_odc: Vec<Signature>,
}

impl Observability {
    /// Computes observabilities from a simulated trace.
    pub fn compute(circuit: &Circuit, trace: &FrameTrace) -> Self {
        let bits = trace.config().num_vectors;
        let frames = trace.frames();
        let n = circuit.len();

        // ODC masks of the current frame (being computed) and register
        // ODCs of the next frame (already computed).
        let mut next_reg_odc: Vec<Signature> =
            vec![Signature::zeros(bits); circuit.registers().len()];
        let mut frame_odc: Vec<Signature> = vec![Signature::zeros(bits); n];
        let reg_index: Vec<Option<usize>> = {
            let mut m = vec![None; n];
            for (i, &r) in circuit.registers().iter().enumerate() {
                m[r.index()] = Some(i);
            }
            m
        };

        for f in (0..frames).rev() {
            for s in frame_odc.iter_mut() {
                *s = Signature::zeros(bits);
            }
            // Primary-output markers are fully observable in every frame.
            for &po in circuit.outputs() {
                frame_odc[po.index()] = Signature::ones(bits);
            }
            // Backward pass over the combinational order.
            for &g in circuit.topo_order().iter().rev() {
                let mut acc = std::mem::replace(&mut frame_odc[g.index()], Signature::zeros(bits));
                for &h in circuit.fanouts(g) {
                    match circuit.gate(h).kind() {
                        GateKind::Dff => {
                            // The register captures g; its value matters
                            // in the next frame (or unconditionally in
                            // the last recorded frame).
                            let ri = reg_index[h.index()].expect("register indexed");
                            if f == frames - 1 {
                                acc = Signature::ones(bits);
                            } else {
                                acc.or_assign(&next_reg_odc[ri]);
                            }
                        }
                        _ => {
                            let sens = sensitivity(circuit, trace, f, h, g);
                            acc.or_assign(&frame_odc[h.index()].and(&sens));
                        }
                    }
                }
                frame_odc[g.index()] = acc;
            }
            // Register outputs act as frame sources; record their ODCs
            // for the previous (earlier) frame's pass.
            for &q in circuit.registers() {
                let mut acc = Signature::zeros(bits);
                for &h in circuit.fanouts(q) {
                    match circuit.gate(h).kind() {
                        GateKind::Dff => {
                            let rj = reg_index[h.index()].expect("register indexed");
                            if f == frames - 1 {
                                acc = Signature::ones(bits);
                            } else {
                                acc.or_assign(&next_reg_odc[rj].clone());
                            }
                        }
                        _ => {
                            let sens = sensitivity(circuit, trace, f, h, q);
                            acc.or_assign(&frame_odc[h.index()].and(&sens));
                        }
                    }
                }
                frame_odc[q.index()] = acc;
            }
            next_reg_odc = circuit
                .registers()
                .iter()
                .map(|&q| frame_odc[q.index()].clone())
                .collect();
        }

        let obs = frame_odc.iter().map(|s| s.density()).collect();
        Self {
            obs,
            frame0_odc: frame_odc,
        }
    }

    /// `obs(g)`: fraction of vectors in which `g` is observable,
    /// evaluated for the frame-0 copy of the gate.
    pub fn obs(&self, gate: GateId) -> f64 {
        self.obs[gate.index()]
    }

    /// The frame-0 ODC mask of a gate.
    pub fn odc_mask(&self, gate: GateId) -> &Signature {
        &self.frame0_odc[gate.index()]
    }

    /// All observabilities, indexed by gate.
    pub fn as_slice(&self) -> &[f64] {
        &self.obs
    }
}

/// Sensitivity of gate `h` (at `frame`) to its fanin *signal* `g`:
/// bit `k` is set when flipping `g` in vector `k` flips `h`'s output.
/// All occurrences of `g` among `h`'s pins flip together.
fn sensitivity(
    circuit: &Circuit,
    trace: &FrameTrace,
    frame: usize,
    h: GateId,
    g: GateId,
) -> Signature {
    let gate = circuit.gate(h);
    let bits = trace.config().num_vectors;
    let flipped = trace.value(frame, g).not();
    let fanins: Vec<&Signature> = gate
        .fanins()
        .iter()
        .map(|&f| {
            if f == g {
                &flipped
            } else {
                trace.value(frame, f)
            }
        })
        .collect();
    let faulty = eval_gate(gate.kind(), &fanins, bits);
    faulty.xor(trace.value(frame, h))
}

/// Exact observability by per-gate fault injection: flips the gate's
/// output in frame 0 and fully resimulates the `n`-frame window,
/// recording the vectors in which any primary output of any frame (or
/// any register input of the last frame) differs. Quadratic cost —
/// intended for validation on small circuits.
pub fn exact_fault_injection(circuit: &Circuit, config: SimConfig) -> Vec<f64> {
    let trace = FrameTrace::simulate(circuit, config);
    let bits = config.num_vectors;
    let frames = config.frames;
    let n = circuit.len();
    let mut result = vec![0.0; n];

    for (victim, vgate) in circuit.iter() {
        if vgate.kind() == GateKind::Output {
            result[victim.index()] = 1.0;
            continue;
        }
        // Faulty values per frame; start as copies of the nominal trace.
        let mut detected = Signature::zeros(bits);
        let mut faulty: Vec<Signature> = (0..n)
            .map(|i| trace.value(0, GateId::new(i)).clone())
            .collect();
        // Inject at frame 0.
        faulty[victim.index()] = faulty[victim.index()].not();
        for f in 0..frames {
            if f > 0 {
                // Register outputs take the previous faulty frame's D.
                let prev = faulty.clone();
                for (i, _) in circuit.iter() {
                    faulty[i.index()] = trace.value(f, i).clone();
                }
                for &q in circuit.registers() {
                    let d = circuit.gate(q).fanins()[0];
                    faulty[q.index()] = prev[d.index()].clone();
                }
            }
            // Re-evaluate combinational logic (inputs keep nominal
            // values; the injected gate keeps its flip only in frame 0).
            for &g in circuit.topo_order() {
                let gate = circuit.gate(g);
                if gate.kind() == GateKind::Input {
                    continue;
                }
                let fanins: Vec<&Signature> =
                    gate.fanins().iter().map(|&x| &faulty[x.index()]).collect();
                let mut value = eval_gate(gate.kind(), &fanins, bits);
                if f == 0 && g == victim {
                    value = value.not();
                }
                faulty[g.index()] = value;
            }
            for &po in circuit.outputs() {
                detected.or_assign(&faulty[po.index()].xor(trace.value(f, po)));
            }
            if f == frames - 1 {
                for &q in circuit.registers() {
                    let d = circuit.gate(q).fanins()[0];
                    detected.or_assign(&faulty[d.index()].xor(trace.value(f, d)));
                }
            }
        }
        result[victim.index()] = detected.density();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{samples, CircuitBuilder};

    #[test]
    fn po_drivers_fully_observable() {
        let mut b = CircuitBuilder::new("chain");
        b.input("a");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::Buf, &["x"]).unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("y").unwrap()), 1.0);
        assert_eq!(o.obs(c.find("x").unwrap()), 1.0, "buffers pass everything");
        assert_eq!(o.obs(c.find("a").unwrap()), 1.0);
    }

    #[test]
    fn and_gate_masks_when_sibling_is_zero() {
        let mut b = CircuitBuilder::new("mask");
        b.input("a");
        b.constant("zero", false).unwrap();
        b.gate("x", GateKind::And, &["a", "zero"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("a").unwrap()), 0.0, "AND with 0 masks a");
        // Flipping the constant to 1 makes the AND transparent to `a`,
        // so the constant is observable exactly when a = 1 (≈ half the
        // vectors).
        let zero_obs = o.obs(c.find("zero").unwrap());
        assert!((0.4..0.6).contains(&zero_obs), "got {zero_obs}");
    }

    #[test]
    fn xor_gates_never_mask() {
        let mut b = CircuitBuilder::new("xor");
        b.input("a");
        b.input("bb");
        b.gate("x", GateKind::Xor, &["a", "bb"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("a").unwrap()), 1.0);
        assert_eq!(o.obs(c.find("bb").unwrap()), 1.0);
    }

    #[test]
    fn matches_exact_on_tree_circuit() {
        // Fanout-free cone: the composition rule is exact.
        let mut b = CircuitBuilder::new("tree");
        b.input("a");
        b.input("b2");
        b.input("c2");
        b.input("d2");
        b.gate("x", GateKind::And, &["a", "b2"]).unwrap();
        b.gate("y", GateKind::Or, &["c2", "d2"]).unwrap();
        b.gate("z", GateKind::Nand, &["x", "y"]).unwrap();
        b.output("z").unwrap();
        let c = b.build().unwrap();
        let cfg = SimConfig::small();
        let t = FrameTrace::simulate(&c, cfg);
        let o = Observability::compute(&c, &t);
        let exact = exact_fault_injection(&c, cfg);
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            assert!(
                (o.obs(id) - exact[id.index()]).abs() < 1e-12,
                "{}: approx {} vs exact {}",
                gate.name(),
                o.obs(id),
                exact[id.index()]
            );
        }
    }

    #[test]
    fn close_to_exact_on_sequential_circuit() {
        let c = samples::s27_like();
        let cfg = SimConfig::small();
        let t = FrameTrace::simulate(&c, cfg);
        let o = Observability::compute(&c, &t);
        let exact = exact_fault_injection(&c, cfg);
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            let diff = (o.obs(id) - exact[id.index()]).abs();
            assert!(
                diff <= 0.35,
                "{}: approx {} vs exact {} (reconvergence error too large)",
                gate.name(),
                o.obs(id),
                exact[id.index()]
            );
        }
        // And on average they should be close.
        let avg_diff: f64 = c
            .iter()
            .map(|(id, _)| (o.obs(id) - exact[id.index()]).abs())
            .sum::<f64>()
            / c.len() as f64;
        assert!(avg_diff < 0.12, "average deviation {avg_diff}");
    }

    #[test]
    fn single_frame_makes_register_drivers_observable() {
        // With n = 1 every register input is an observation point, so
        // every register's driving gate is fully observable.
        let c = samples::s27_like();
        let o = Observability::compute(
            &c,
            &FrameTrace::simulate(
                &c,
                SimConfig {
                    frames: 1,
                    ..SimConfig::small()
                },
            ),
        );
        for &q in c.registers() {
            let d = c.gate(q).fanins()[0];
            assert_eq!(o.obs(d), 1.0, "driver of {}", c.gate(q).name());
        }
    }

    #[test]
    fn dead_gate_has_zero_observability() {
        let mut b = CircuitBuilder::new("dead");
        b.input("a");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("dead", GateKind::Not, &["a"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let t = FrameTrace::simulate(&c, SimConfig::small());
        let o = Observability::compute(&c, &t);
        assert_eq!(o.obs(c.find("dead").unwrap()), 0.0);
    }
}
