//! Raw per-gate soft-error rates `err(g)`.
//!
//! The paper extracts these from SPICE characterization following
//! Rao et al. (DATE'06, ref \[25\]). SPICE decks and the 65 nm models are
//! not available here, so this module ships a documented **synthetic
//! characterization** with the same structure: a raw SEU rate per gate
//! kind (proportional to sensitive diffusion area, so wide/complex
//! gates collect more strikes, inverters fewer), in arbitrary
//! FIT-like units. Every SER figure the paper reports is *relative*
//! (ΔSER, ratios), so any fixed positive characterization preserves
//! the experiment semantics; see DESIGN.md §4.

use netlist::{Circuit, GateId, GateKind};

/// Synthetic per-kind raw soft-error-rate characterization.
///
/// # Examples
///
/// ```
/// use ser_engine::ErrorRateModel;
/// use netlist::GateKind;
/// let m = ErrorRateModel::default();
/// assert!(m.kind_rate(GateKind::Xor, 2) > m.kind_rate(GateKind::Not, 1));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorRateModel {
    rates: [f64; 14],
    per_extra_fanin: f64,
    /// Per-gate multiplicative scales keyed by gate name — how the
    /// hardening advisor models a protected (DICE/TMR-style) cell:
    /// the kind characterization stays intact, the named instance's
    /// raw rate is multiplied by the (usually ≪ 1) scale.
    gate_scales: Vec<(String, f64)>,
}

fn kind_slot(kind: GateKind) -> usize {
    match kind {
        GateKind::Input => 0,
        GateKind::Output => 1,
        GateKind::Buf => 2,
        GateKind::Not => 3,
        GateKind::And => 4,
        GateKind::Nand => 5,
        GateKind::Or => 6,
        GateKind::Nor => 7,
        GateKind::Xor => 8,
        GateKind::Xnor => 9,
        GateKind::Mux => 10,
        GateKind::Dff => 11,
        GateKind::Const0 => 12,
        GateKind::Const1 => 13,
    }
}

impl Default for ErrorRateModel {
    fn default() -> Self {
        let mut rates = [0.0; 14];
        // Arbitrary-but-consistent FIT-like units; relative magnitudes
        // follow sensitive-area intuition (complex gates > inverters,
        // registers comparable to a complex gate).
        rates[kind_slot(GateKind::Buf)] = 1.6e-6;
        rates[kind_slot(GateKind::Not)] = 1.0e-6;
        rates[kind_slot(GateKind::And)] = 2.4e-6;
        rates[kind_slot(GateKind::Nand)] = 2.0e-6;
        rates[kind_slot(GateKind::Or)] = 2.4e-6;
        rates[kind_slot(GateKind::Nor)] = 2.0e-6;
        rates[kind_slot(GateKind::Xor)] = 3.6e-6;
        rates[kind_slot(GateKind::Xnor)] = 3.6e-6;
        rates[kind_slot(GateKind::Mux)] = 3.0e-6;
        rates[kind_slot(GateKind::Dff)] = 2.8e-6;
        Self {
            rates,
            per_extra_fanin: 0.4e-6,
            gate_scales: Vec::new(),
        }
    }
}

impl ErrorRateModel {
    /// The default synthetic characterization.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides one kind's raw rate (chainable).
    pub fn with_kind_rate(mut self, kind: GateKind, rate: f64) -> Self {
        self.rates[kind_slot(kind)] = rate;
        self
    }

    /// Raw SEU rate of a gate of `kind` with `fanin_count` fanins.
    /// I/O markers and constants are struck-immune (rate 0).
    pub fn kind_rate(&self, kind: GateKind, fanin_count: usize) -> f64 {
        let base = self.rates[kind_slot(kind)];
        if base == 0.0 {
            return 0.0;
        }
        base + fanin_count.saturating_sub(2) as f64 * self.per_extra_fanin
    }

    /// Scales one named gate instance's raw rate (chainable) — the
    /// hardening advisor's model of a protected cell. A repeated name
    /// replaces the earlier scale rather than compounding it.
    pub fn with_gate_scale(mut self, name: impl Into<String>, scale: f64) -> Self {
        let name = name.into();
        assert!(scale >= 0.0, "hardening scale must be non-negative");
        if let Some(slot) = self.gate_scales.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = scale;
        } else {
            self.gate_scales.push((name, scale));
        }
        self
    }

    /// The per-instance scale applied to `name` (1.0 when unhardened).
    pub fn gate_scale(&self, name: &str) -> f64 {
        self.gate_scales
            .iter()
            .find(|(n, _)| n == name)
            .map_or(1.0, |(_, s)| *s)
    }

    /// Number of per-instance overrides installed.
    pub fn num_gate_scales(&self) -> usize {
        self.gate_scales.len()
    }

    /// Raw rate of one gate of a circuit (kind characterization times
    /// any per-instance hardening scale).
    pub fn rate(&self, circuit: &Circuit, id: GateId) -> f64 {
        let gate = circuit.gate(id);
        self.kind_rate(gate.kind(), gate.fanins().len()) * self.gate_scale(gate.name())
    }

    /// Rates of all gates, indexed by [`GateId`].
    pub fn rates(&self, circuit: &Circuit) -> Vec<f64> {
        circuit
            .iter()
            .map(|(id, _)| self.rate(circuit, id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::CircuitBuilder;

    #[test]
    fn markers_are_immune() {
        let m = ErrorRateModel::default();
        assert_eq!(m.kind_rate(GateKind::Input, 0), 0.0);
        assert_eq!(m.kind_rate(GateKind::Output, 1), 0.0);
        assert_eq!(m.kind_rate(GateKind::Const1, 0), 0.0);
    }

    #[test]
    fn wider_gates_collect_more() {
        let m = ErrorRateModel::default();
        assert!(m.kind_rate(GateKind::And, 6) > m.kind_rate(GateKind::And, 2));
    }

    #[test]
    fn registers_have_positive_rate() {
        let m = ErrorRateModel::default();
        assert!(m.kind_rate(GateKind::Dff, 1) > 0.0);
    }

    #[test]
    fn per_circuit_rates() {
        let mut b = CircuitBuilder::new("r");
        b.input("a");
        b.gate("x", GateKind::Nand, &["a", "a"]).unwrap();
        b.dff("q", "x").unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let m = ErrorRateModel::default();
        let rates = m.rates(&c);
        assert_eq!(rates.len(), c.len());
        assert_eq!(rates[c.find("a").unwrap().index()], 0.0);
        assert!(rates[c.find("q").unwrap().index()] > 0.0);
    }

    #[test]
    fn override_chains() {
        let m = ErrorRateModel::default().with_kind_rate(GateKind::Not, 9.0);
        assert_eq!(m.kind_rate(GateKind::Not, 1), 9.0);
    }

    #[test]
    fn gate_scale_applies_per_instance() {
        let mut b = CircuitBuilder::new("h");
        b.input("a");
        b.gate("x", GateKind::Nand, &["a", "a"]).unwrap();
        b.gate("y", GateKind::Nand, &["a", "a"]).unwrap();
        b.output("x").unwrap();
        b.output("y").unwrap();
        let c = b.build().unwrap();
        let base = ErrorRateModel::default();
        let m = base.clone().with_gate_scale("x", 0.1);
        let x = c.find("x").unwrap();
        let y = c.find("y").unwrap();
        assert!((m.rate(&c, x) - 0.1 * base.rate(&c, x)).abs() < 1e-18);
        assert_eq!(m.rate(&c, y), base.rate(&c, y), "siblings untouched");
        assert_eq!(m.gate_scale("x"), 0.1);
        assert_eq!(m.gate_scale("y"), 1.0);
        // Re-scaling the same name replaces, not compounds.
        let m2 = m.with_gate_scale("x", 0.5);
        assert_eq!(m2.gate_scale("x"), 0.5);
        assert_eq!(m2.num_gate_scales(), 1);
    }
}
