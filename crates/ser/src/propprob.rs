//! Propagation-probability SER estimation — the third, structurally
//! independent logic-masking estimator (after the analytic ODC engine
//! and the Monte-Carlo fault injector), following Asadi & Tahoori's
//! closed-form propagation-probability framework.
//!
//! Instead of bit-exact ODC masks, each gate gets a scalar
//! *propagation probability* `prop(g) ∈ [0, 1]`: the probability that
//! a fault at `g`'s output in frame 0 reaches an observation point (a
//! primary output of any recorded frame, or a register input of the
//! last frame). It is computed by one backward pass per frame over the
//! [`Levelization`](netlist::Levelization) slot order:
//!
//! * a fanout `h` *sensitizes* the fault with a per-kind closed-form
//!   probability derived from the measured signal probabilities of its
//!   side inputs (AND/NAND: `Π P(side = 1)`; OR/NOR: `Π P(side = 0)`;
//!   XOR/XNOR/NOT/BUF: 1, or 0 when an even number of fanin positions
//!   carry the fault; MUX: exact 8-way enumeration over its fanins);
//! * the sensitized contribution is `sens(h, g) · prop(h)`; a register
//!   fanout contributes the register's next-frame propagation
//!   probability (or 1 in the last frame, where the register input is
//!   itself an observation point);
//! * contributions combine under an independence assumption:
//!   `prop(g) = 1 − Π (1 − c_i)` (primary-output markers start at 1).
//!
//! Signal probabilities are measured per frame from the same
//! [`FrameTrace`] the analytic engine consumes, so the two estimators
//! share one simulation but *no* masking machinery: reconvergent
//! fanout errs differently here (independence products) than in the
//! ODC composition (mask intersections), which is exactly what makes
//! the three-way agreement oracle informative. On fanout-free cones of
//! BUF/NOT/XOR/XNOR the estimate is exact (all sensitizations are 1).
//!
//! # Engine
//!
//! The pass mirrors the ODC engine's worker-pool scheme: each level is
//! a contiguous slot range whose fanouts all sit in strictly higher
//! (already finalized) slots, so `split_at_mut` fans a level across
//! `std::thread::scope` workers with disjoint writes. Every slot's
//! arithmetic is a fixed-order product over its plan entries,
//! independent of the chunking, so the pool is bit-identical to one
//! thread by construction — enforced by in-loop `debug_assert!`
//! re-derivations, one sampled audited level per frame
//! ([`EngineReport::audited_layers`]), and a circuit breaker that
//! recomputes the whole estimate serially on an audit mismatch
//! ([`EngineReport::scalar_fallback`]).

use netlist::{parallel, Circuit, GateId, GateKind, Levelization};

use crate::analysis::{report_from_observabilities, SerConfig, SerReport};
use crate::sim::{EngineReport, FrameTrace};

/// Magic seed that makes a multi-threaded propagation pass deliberately
/// corrupt one worker's chunk in the audited level of the first
/// processed (= last recorded) frame — a test hook proving the sampled
/// audit trips the breaker and the serial fallback recovers.
#[doc(hidden)]
pub const SABOTAGE_PROP_SEED: u64 = 0x5AB0_7A6E_4209;

/// Magic seed that skews the *final* propagation probabilities (after
/// all audits have passed) — a test hook for the three-way agreement
/// suite, proving it actually fails on an injected estimator bug. The
/// skew `obs ↦ 0.5·obs + 0.25` moves every gate's estimate toward ½,
/// so any circuit's SER shifts measurably while staying in `[0, 1]`.
#[doc(hidden)]
pub const SABOTAGE_ESTIMATE_SEED: u64 = 0x5AB0_7A6E_E577;

/// One fanout's contribution to a gate's propagation probability.
#[derive(Debug)]
enum PropFanout {
    /// The fanout is a register capturing the gate: the contribution is
    /// the register's next-frame propagation probability (1 in the
    /// last frame).
    Reg(usize),
    /// A combinational fanout: `sens(h, g) · prop(h)`, with the
    /// sensitization evaluated from the frame's measured signal
    /// probabilities. `fanins` marks which positions carry the fault.
    Comb {
        h_slot: u32,
        kind: GateKind,
        fanins: Box<[(u32, bool)]>,
    },
}

/// Per-slot accumulation plan, in levelization slot order.
#[derive(Debug)]
struct PropSlot {
    /// Primary-output markers are observation points themselves.
    start_one: bool,
    fanouts: Box<[PropFanout]>,
}

fn build_prop_plan(circuit: &Circuit, levels: &Levelization) -> Vec<PropSlot> {
    (0..circuit.len())
        .map(|s| {
            let g = levels.gate_at(s);
            let start_one = circuit.gate(g).kind() == GateKind::Output;
            let fanouts = circuit
                .fanouts(g)
                .iter()
                .map(|&h| {
                    let hg = circuit.gate(h);
                    if hg.kind() == GateKind::Dff {
                        // Register slots are 0..R in `registers()` order.
                        PropFanout::Reg(levels.slot_of(h))
                    } else {
                        PropFanout::Comb {
                            h_slot: levels.slot_of(h) as u32,
                            kind: hg.kind(),
                            fanins: hg
                                .fanins()
                                .iter()
                                .map(|&x| (levels.slot_of(x) as u32, x == g))
                                .collect(),
                        }
                    }
                })
                .collect();
            PropSlot { start_one, fanouts }
        })
        .collect()
}

/// The probability that flipping every `true`-marked fanin position of
/// a `kind` gate flips its output, under the frame's measured signal
/// probabilities `p` (indexed by slot). Closed forms per kind; MUX is
/// resolved by exact enumeration over its (at most 3 distinct) fanins.
fn sensitization(kind: GateKind, fanins: &[(u32, bool)], p: &[f64]) -> f64 {
    match kind {
        GateKind::Buf | GateKind::Not | GateKind::Output => 1.0,
        GateKind::And | GateKind::Nand => fanins
            .iter()
            .filter(|&&(_, flip)| !flip)
            .map(|&(s, _)| p[s as usize])
            .product(),
        GateKind::Or | GateKind::Nor => fanins
            .iter()
            .filter(|&&(_, flip)| !flip)
            .map(|&(s, _)| 1.0 - p[s as usize])
            .product(),
        GateKind::Xor | GateKind::Xnor => {
            // An even number of flipped positions cancels out exactly.
            let flips = fanins.iter().filter(|&&(_, flip)| flip).count();
            if flips % 2 == 1 {
                1.0
            } else {
                0.0
            }
        }
        GateKind::Mux => mux_sensitization(fanins, p),
        // Sources have no fanins and registers are handled as
        // `PropFanout::Reg`; none of these can appear here.
        GateKind::Input | GateKind::Const0 | GateKind::Const1 | GateKind::Dff => {
            unreachable!("{kind} cannot be a combinational fanout")
        }
    }
}

/// Exact MUX sensitization: enumerates every assignment of the gate's
/// distinct fanin slots (≤ 3, so ≤ 8 cases), weights each by the
/// independence product of the measured probabilities, and sums the
/// weight of the assignments where flipping the marked positions flips
/// the output.
fn mux_sensitization(fanins: &[(u32, bool)], p: &[f64]) -> f64 {
    let mut slots = [0u32; 3];
    let mut n = 0;
    for &(s, _) in fanins {
        if !slots[..n].contains(&s) {
            slots[n] = s;
            n += 1;
        }
    }
    let mut total = 0.0;
    for mask in 0u32..(1 << n) {
        let mut w = 1.0;
        for (i, &s) in slots[..n].iter().enumerate() {
            let ps = p[s as usize];
            w *= if mask >> i & 1 == 1 { ps } else { 1.0 - ps };
        }
        if w == 0.0 {
            continue;
        }
        let mut nominal = [false; 3];
        let mut faulty = [false; 3];
        for (j, &(s, flip)) in fanins.iter().enumerate() {
            let pos = slots[..n].iter().position(|&x| x == s).expect("collected");
            nominal[j] = mask >> pos & 1 == 1;
            faulty[j] = nominal[j] ^ flip;
        }
        let k = fanins.len();
        if GateKind::Mux.eval_bool(&nominal[..k]) != GateKind::Mux.eval_bool(&faulty[..k]) {
            total += w;
        }
    }
    total
}

/// Computes the propagation probabilities of slots `lo..lo + out.len()`
/// into `out`. `prop_right` holds the finalized probabilities of slots
/// `right_base..`, `p` the frame's measured signal probabilities (by
/// slot), and `next_reg` the register probabilities of the following
/// frame. Serial over its range; both the worker chunks and the audit
/// oracle run exactly this function, so parallel/serial bit-identity
/// is structural.
#[allow(clippy::too_many_arguments)]
fn prop_slots(
    plan: &[PropSlot],
    p: &[f64],
    prop_right: &[f64],
    right_base: usize,
    next_reg: &[f64],
    last_frame: bool,
    out: &mut [f64],
    lo: usize,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let s = lo + i;
        let mut miss = if plan[s].start_one { 0.0 } else { 1.0 };
        for fo in plan[s].fanouts.iter() {
            let c = match fo {
                PropFanout::Reg(ri) => {
                    if last_frame {
                        1.0
                    } else {
                        next_reg[*ri]
                    }
                }
                PropFanout::Comb {
                    h_slot,
                    kind,
                    fanins,
                } => {
                    let hp = prop_right[*h_slot as usize - right_base];
                    if hp == 0.0 {
                        0.0
                    } else {
                        sensitization(*kind, fanins, p) * hp
                    }
                }
            };
            miss *= 1.0 - c;
        }
        *slot = 1.0 - miss;
    }
}

/// Accumulates one reverse pass over slots `lo..hi` of `prop` in
/// place, fanning the range across scoped workers when it is large
/// enough. `sabotage` deliberately corrupts the first worker's chunk
/// (test hook).
#[allow(clippy::too_many_arguments)]
fn prop_pass(
    plan: &[PropSlot],
    p: &[f64],
    prop: &mut [f64],
    lo: usize,
    hi: usize,
    next_reg: &[f64],
    last_frame: bool,
    workers: usize,
    sabotage: bool,
) {
    let n = hi - lo;
    let (left, right) = prop.split_at_mut(hi);
    let cur = &mut left[lo..];
    let workers = parallel::clamp_workers(workers, n);
    if workers <= 1 {
        prop_slots(plan, p, right, hi, next_reg, last_frame, cur, lo);
        if sabotage {
            cur[0] = (cur[0] + 0.5).clamp(0.25, 1.0);
        }
        return;
    }
    let chunk_slots = n.div_ceil(workers);
    let right: &[f64] = right;
    std::thread::scope(|scope| {
        for (ci, chunk) in cur.chunks_mut(chunk_slots).enumerate() {
            scope.spawn(move || {
                prop_slots(
                    plan,
                    p,
                    right,
                    hi,
                    next_reg,
                    last_frame,
                    chunk,
                    lo + ci * chunk_slots,
                );
                if sabotage && ci == 0 {
                    chunk[0] = (chunk[0] + 0.5).clamp(0.25, 1.0);
                }
            });
        }
    });
}

/// Recomputes slots `lo..hi` serially and compares them with what the
/// (possibly parallel) pass wrote. Returns `true` when identical.
fn verify_pass(
    plan: &[PropSlot],
    p: &[f64],
    prop: &[f64],
    lo: usize,
    hi: usize,
    next_reg: &[f64],
    last_frame: bool,
) -> bool {
    let mut scratch = vec![0.0; hi - lo];
    prop_slots(
        plan,
        p,
        &prop[hi..],
        hi,
        next_reg,
        last_frame,
        &mut scratch,
        lo,
    );
    prop[lo..hi] == scratch[..]
}

/// Deterministically samples the level to audit for a frame (0 is the
/// layer-0 source region, processed last).
fn audit_pass(frame: usize, num_levels: usize) -> usize {
    frame.wrapping_mul(0x9E37_79B9) % num_levels
}

/// Per-gate fault propagation probabilities derived from a frame
/// trace — the logic-masking estimate of the propagation-probability
/// engine, playing the role [`crate::odc::Observability`] plays for
/// the analytic engine.
#[derive(Debug, Clone)]
pub struct PropProb {
    prop: Vec<f64>,
    engine: EngineReport,
}

impl PropProb {
    /// Computes propagation probabilities from a simulated trace.
    pub fn compute(circuit: &Circuit, trace: &FrameTrace) -> Self {
        let config = *trace.config();
        let threads = parallel::resolve_workers(config.threads);
        let sabotage_run = config.seed == SABOTAGE_PROP_SEED && threads > 1;
        let mut engine = EngineReport {
            threads,
            ..EngineReport::default()
        };
        let mut tripped = false;
        let prop = Self::backward(circuit, trace, threads, sabotage_run, &mut engine)
            .unwrap_or_else(|| {
                tripped = true;
                Vec::new()
            });
        let mut prop = if tripped {
            // Circuit breaker: recompute serially (the audit oracle
            // path) against the already validated trace values.
            engine.scalar_fallback = true;
            let mut serial_engine = EngineReport::default();
            Self::backward(circuit, trace, 1, false, &mut serial_engine)
                .expect("serial propagation pass cannot trip its own audit")
        } else {
            prop
        };
        if config.seed == SABOTAGE_ESTIMATE_SEED {
            // Post-audit estimator-bug injection (test hook): the
            // agreement suite must flag the skewed estimate.
            for v in prop.iter_mut() {
                *v = 0.5 * *v + 0.25;
            }
        }
        Self {
            prop,
            engine: trace.engine().merged(engine),
        }
    }

    /// Runs the backward propagation over all frames, returning `None`
    /// when a sampled audit catches a divergent worker chunk.
    fn backward(
        circuit: &Circuit,
        trace: &FrameTrace,
        threads: usize,
        sabotage_run: bool,
        engine: &mut EngineReport,
    ) -> Option<Vec<f64>> {
        let config = trace.config();
        let bits = config.num_vectors as f64;
        let frames = trace.frames();
        let levels = trace.levels();
        let slots = levels.num_gates();
        let r = levels.num_registers();
        let s0 = levels.level_slots(0).end;
        let num_levels = levels.num_levels();
        let plan = build_prop_plan(circuit, levels);
        let wps = config.num_vectors / 64;

        let mut prop = vec![0.0; slots];
        let mut next_reg = vec![0.0; r];
        let mut p = vec![0.0; slots];
        for f in (0..frames).rev() {
            let last = f == frames - 1;
            // Measured per-slot signal probabilities of this frame.
            let words = trace.arena().frame(f);
            for (s, ps) in p.iter_mut().enumerate() {
                let ones: u64 = words[s * wps..(s + 1) * wps]
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum();
                *ps = ones as f64 / bits;
            }
            let audit = audit_pass(f, num_levels);
            let sab_pass = if sabotage_run && last {
                Some(audit)
            } else {
                None
            };
            // Backward over the combinational levels, then the layer-0
            // source region (registers, inputs, constants).
            for l in (1..num_levels).rev() {
                let lr = levels.level_slots(l);
                prop_pass(
                    &plan,
                    &p,
                    &mut prop,
                    lr.start,
                    lr.end,
                    &next_reg,
                    last,
                    threads,
                    sab_pass == Some(l),
                );
                #[cfg(debug_assertions)]
                if threads > 1 && sab_pass.is_none() {
                    debug_assert!(
                        verify_pass(&plan, &p, &prop, lr.start, lr.end, &next_reg, last),
                        "parallel propagation level {l} diverged from serial evaluation"
                    );
                }
            }
            prop_pass(
                &plan,
                &p,
                &mut prop,
                0,
                s0,
                &next_reg,
                last,
                threads,
                sab_pass == Some(0),
            );
            #[cfg(debug_assertions)]
            if threads > 1 && sab_pass.is_none() {
                debug_assert!(
                    verify_pass(&plan, &p, &prop, 0, s0, &next_reg, last),
                    "parallel propagation source region diverged from serial evaluation"
                );
            }
            // One sampled level per frame is re-derived serially when
            // the pool is active — the same sampled-audit circuit
            // breaker as the simulation and ODC engines.
            if threads > 1 {
                engine.audited_layers += 1;
                let (alo, ahi) = if audit == 0 {
                    (0, s0)
                } else {
                    let ar = levels.level_slots(audit);
                    (ar.start, ar.end)
                };
                if !verify_pass(&plan, &p, &prop, alo, ahi, &next_reg, last) {
                    engine.trips += 1;
                    return None;
                }
            }
            // Register outputs act as frame sources; record their
            // probabilities for the previous (earlier) frame's pass.
            next_reg.copy_from_slice(&prop[..r]);
        }

        let mut out = vec![0.0; circuit.len()];
        for (id, _) in circuit.iter() {
            out[id.index()] = prop[levels.slot_of(id)];
        }
        Some(out)
    }

    /// `prop(g)`: estimated probability that a frame-0 fault at `g` is
    /// observed, evaluated for the frame-0 copy of the gate.
    pub fn prop(&self, gate: GateId) -> f64 {
        self.prop[gate.index()]
    }

    /// All propagation probabilities, indexed by gate.
    pub fn as_slice(&self) -> &[f64] {
        &self.prop
    }

    /// Engine diagnostics (simulation + propagation merged): thread
    /// count, audits and circuit-breaker activity.
    pub fn engine(&self) -> &EngineReport {
        &self.engine
    }
}

/// Runs the full eq. (4) analysis with the propagation-probability
/// logic-masking front end: simulate, one backward propagation pass,
/// then the shared ELW/rate report assembly.
///
/// # Errors
///
/// Returns [`retime::RetimeError`] if the circuit cannot be modeled as
/// a retiming graph (register-only loops).
///
/// # Examples
///
/// ```
/// use netlist::samples;
/// use ser_engine::{propprob_report, SerConfig};
/// # fn main() -> Result<(), retime::RetimeError> {
/// let c = samples::s27_like();
/// let report = propprob_report(&c, &SerConfig::small(20))?;
/// assert!(report.ser > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn propprob_report(
    circuit: &Circuit,
    config: &SerConfig,
) -> Result<SerReport, retime::RetimeError> {
    let trace = FrameTrace::simulate(circuit, config.sim);
    let pp = PropProb::compute(circuit, &trace);
    report_from_observabilities(circuit, config, pp.as_slice(), *pp.engine())
}

/// [`propprob_report`] reusing an already simulated trace (the
/// experiment pipeline simulates once and feeds every estimator).
///
/// # Errors
///
/// See [`propprob_report`].
pub fn propprob_report_with_trace(
    circuit: &Circuit,
    config: &SerConfig,
    trace: &FrameTrace,
) -> Result<SerReport, retime::RetimeError> {
    let pp = PropProb::compute(circuit, trace);
    report_from_observabilities(circuit, config, pp.as_slice(), *pp.engine())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::odc::exact_fault_injection;
    use crate::sim::SimConfig;
    use netlist::{samples, CircuitBuilder};

    fn prop_of(c: &Circuit, cfg: SimConfig) -> PropProb {
        PropProb::compute(c, &FrameTrace::simulate(c, cfg))
    }

    #[test]
    fn deterministic_cone_is_exactly_one() {
        // BUF/NOT/XOR never mask, so every gate in the output cone has
        // propagation probability exactly 1 and the dead gate exactly 0.
        let mut b = CircuitBuilder::new("det");
        b.input("a");
        b.input("b2");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.gate("y", GateKind::Xor, &["x", "b2"]).unwrap();
        b.gate("z", GateKind::Buf, &["y"]).unwrap();
        b.gate("dead", GateKind::Not, &["b2"]).unwrap();
        b.output("z").unwrap();
        let c = b.build().unwrap();
        let pp = prop_of(&c, SimConfig::small());
        for name in ["a", "b2", "x", "y", "z"] {
            assert_eq!(pp.prop(c.find(name).unwrap()), 1.0, "{name}");
        }
        assert_eq!(pp.prop(c.find("dead").unwrap()), 0.0);
    }

    #[test]
    fn and_with_constant_zero_masks() {
        let mut b = CircuitBuilder::new("mask");
        b.input("a");
        b.constant("zero", false).unwrap();
        b.gate("x", GateKind::And, &["a", "zero"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let pp = prop_of(&c, SimConfig::small());
        assert_eq!(pp.prop(c.find("a").unwrap()), 0.0, "AND with 0 masks a");
        // The constant is sensitized exactly when a = 1 (≈ half the
        // vectors under the measured probabilities).
        let z = pp.prop(c.find("zero").unwrap());
        assert!((0.4..0.6).contains(&z), "got {z}");
    }

    #[test]
    fn mux_sensitization_matches_intuition() {
        // sel chooses between a and b: the data input `a` propagates
        // with probability P(sel = 0).
        let mut b = CircuitBuilder::new("mux");
        b.input("sel");
        b.input("a");
        b.input("b2");
        b.gate("m", GateKind::Mux, &["sel", "a", "b2"]).unwrap();
        b.output("m").unwrap();
        let c = b.build().unwrap();
        let cfg = SimConfig::small();
        let trace = FrameTrace::simulate(&c, cfg);
        let pp = PropProb::compute(&c, &trace);
        let sel_density = {
            let sel = c.find("sel").unwrap();
            (0..cfg.frames)
                .map(|f| trace.value(f, sel).count_ones() as f64 / cfg.num_vectors as f64)
                .next()
                .unwrap()
        };
        let a_prop = pp.prop(c.find("a").unwrap());
        assert!(
            (a_prop - (1.0 - sel_density)).abs() < 1e-12,
            "a: {a_prop} vs 1 - P(sel) = {}",
            1.0 - sel_density
        );
        // The select propagates exactly when the two data inputs
        // differ (probability ½ under random inputs).
        let sel_prop = pp.prop(c.find("sel").unwrap());
        assert!((0.4..0.6).contains(&sel_prop), "got {sel_prop}");
    }

    #[test]
    fn close_to_exact_on_sequential_circuit() {
        let c = samples::s27_like();
        let cfg = SimConfig::small();
        let pp = prop_of(&c, cfg);
        let exact = exact_fault_injection(&c, cfg);
        let mut total = 0.0;
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            let diff = (pp.prop(id) - exact[id.index()]).abs();
            total += diff;
            assert!(
                diff <= 0.45,
                "{}: propprob {} vs exact {}",
                gate.name(),
                pp.prop(id),
                exact[id.index()]
            );
        }
        let avg = total / c.len() as f64;
        assert!(avg < 0.15, "average deviation {avg}");
    }

    #[test]
    fn threaded_propagation_is_bit_identical() {
        let c = samples::fig1_like();
        let base = prop_of(&c, SimConfig::small());
        for threads in [2, 7] {
            let cfg = SimConfig {
                threads,
                ..SimConfig::small()
            };
            let pp = prop_of(&c, cfg);
            assert!(pp.engine().is_clean(), "threads={threads}");
            for (id, _) in c.iter() {
                assert_eq!(pp.prop(id), base.prop(id), "threads={threads}: {id}");
            }
        }
    }

    #[test]
    fn sabotaged_worker_trips_breaker_and_falls_back() {
        let c = samples::fig1_like();
        let cfg = SimConfig {
            seed: SABOTAGE_PROP_SEED,
            threads: 2,
            ..SimConfig::small()
        };
        let pp = prop_of(&c, cfg);
        assert_eq!(pp.engine().trips, 1, "sabotage must trip the audit");
        assert!(pp.engine().scalar_fallback);
        // The fallback result equals the single-threaded run with the
        // same seed (which is not sabotaged), bit for bit.
        let serial = prop_of(&c, SimConfig { threads: 1, ..cfg });
        assert!(serial.engine().is_clean());
        for (id, _) in c.iter() {
            assert_eq!(pp.prop(id), serial.prop(id));
        }
    }

    #[test]
    fn estimate_sabotage_skews_the_result() {
        let c = samples::s27_like();
        let clean = prop_of(&c, SimConfig::small());
        let skewed = prop_of(
            &c,
            SimConfig {
                seed: SABOTAGE_ESTIMATE_SEED,
                ..SimConfig::small()
            },
        );
        // The skew moves every value toward ½ — but the *clean* run
        // under the sabotage seed differs from the baseline seed
        // anyway (different vectors), so compare against the skew law
        // applied to an unskewed run of the same seed is impossible
        // from outside; instead check the invariant the skew
        // guarantees: no value below ¼ or above ¾.
        for (id, _) in c.iter() {
            let v = skewed.prop(id);
            assert!((0.25..=0.75).contains(&v), "{id}: {v}");
        }
        // And at least one gate moved away from its clean estimate.
        assert!(
            c.iter()
                .any(|(id, _)| (skewed.prop(id) - clean.prop(id)).abs() > 0.05),
            "sabotage must shift the estimate"
        );
    }
}
