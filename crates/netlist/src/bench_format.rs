//! Reader and writer for the ISCAS89 `.bench` netlist format.
//!
//! This is the format the paper's benchmark circuits (s13207, b17, …)
//! ship in. The grammar is line-oriented:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G14)
//! G14 = NAND(G0, G11)
//! ```

use std::fs::{self, File};
use std::io::{BufRead, BufReader, Cursor};
use std::path::Path;

use crate::circuit::{Circuit, CircuitBuilder};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::limits::ParseLimits;
use crate::stream::LineSource;

/// Parses a circuit from `.bench` text with [`ParseLimits::default`].
///
/// `name` becomes the circuit name (the format itself is anonymous).
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] with a line number on syntax errors,
/// [`NetlistError::LimitExceeded`] when a resource limit trips, and the
/// usual structural errors (unknown signal, combinational cycle, …)
/// from [`CircuitBuilder::build`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let src = "\
/// INPUT(a)
/// OUTPUT(y)
/// q = DFF(x)
/// x = NAND(a, q)
/// y = NOT(q)
/// ";
/// let c = netlist::bench_format::parse(src, "tiny")?;
/// assert_eq!(c.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str, name: &str) -> Result<Circuit, NetlistError> {
    parse_with_limits(text, name, &ParseLimits::default())
}

/// Parses a circuit from `.bench` text under explicit [`ParseLimits`].
///
/// Runs the same streaming core as [`parse_reader`] over the in-memory
/// text, so the two paths are byte-identical by construction.
///
/// # Errors
///
/// As [`parse`]; the limit checks use `limits` instead of the
/// defaults.
pub fn parse_with_limits(
    text: &str,
    name: &str,
    limits: &ParseLimits,
) -> Result<Circuit, NetlistError> {
    parse_reader(Cursor::new(text.as_bytes()), name, limits)
}

/// Parses a circuit from a `.bench` byte stream under explicit
/// [`ParseLimits`], without ever materializing the whole input: the
/// format is strictly line-oriented, so the parser holds one checked
/// line at a time (see [`crate::stream::parser_peak_bytes`]).
///
/// # Errors
///
/// As [`parse`], plus [`NetlistError::Io`] for read failures and
/// invalid UTF-8.
pub fn parse_reader<R: BufRead>(
    reader: R,
    name: &str,
    limits: &ParseLimits,
) -> Result<Circuit, NetlistError> {
    let mut src = LineSource::new(reader, limits);
    let mut builder = CircuitBuilder::new(name);
    let mut gates = 0usize;
    let bump = |gates: &mut usize, line: usize| -> Result<(), NetlistError> {
        *gates += 1;
        if *gates > limits.max_gates {
            return Err(NetlistError::LimitExceeded {
                line,
                what: "gate count",
                value: *gates,
                limit: limits.max_gates,
            });
        }
        Ok(())
    };
    while let Some((line, raw)) = src.next_line()? {
        let stripped = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if stripped.is_empty() {
            continue;
        }
        if let Some(rest) = strip_directive(stripped, "INPUT") {
            let signal = check_name(parse_parenthesized(rest, line)?, line, limits)?;
            bump(&mut gates, line)?;
            builder
                .gate(signal, GateKind::Input, &[])
                .map_err(|e| at_line(e, line))?;
        } else if let Some(rest) = strip_directive(stripped, "OUTPUT") {
            let signal = check_name(parse_parenthesized(rest, line)?, line, limits)?;
            bump(&mut gates, line)?;
            builder.output(signal).map_err(|e| at_line(e, line))?;
        } else if let Some(eq) = stripped.find('=') {
            let target = check_name(stripped[..eq].trim(), line, limits)?;
            if target.is_empty() {
                return Err(parse_err(line, "missing signal name before `=`"));
            }
            let rhs = stripped[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| parse_err(line, "expected `FUNC(args)` after `=`"))?;
            let func = rhs[..open].trim();
            let args_text = parse_parenthesized(&rhs[open..], line)?;
            let args: Vec<&str> = args_text
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if args.len() > limits.max_fanin {
                return Err(NetlistError::LimitExceeded {
                    line,
                    what: "fanin count",
                    value: args.len(),
                    limit: limits.max_fanin,
                });
            }
            for arg in &args {
                check_name(arg, line, limits)?;
            }
            bump(&mut gates, line)?;
            let kind = GateKind::from_bench_name(func).map_err(|e| at_line(e, line))?;
            if kind == GateKind::Dff {
                if args.len() != 1 {
                    return Err(parse_err(line, "DFF takes exactly one argument"));
                }
                builder.dff(target, args[0]).map_err(|e| at_line(e, line))?;
            } else {
                builder
                    .gate(target, kind, &args)
                    .map_err(|e| at_line(e, line))?;
            }
        } else {
            return Err(parse_err(line, "unrecognized statement"));
        }
    }
    builder.build()
}

/// Reads and parses a `.bench` file; the file stem becomes the circuit
/// name.
///
/// # Errors
///
/// Propagates I/O errors and the errors of [`parse`].
pub fn read_file(path: impl AsRef<Path>) -> Result<Circuit, NetlistError> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    parse_reader(
        BufReader::new(File::open(path)?),
        name,
        &ParseLimits::default(),
    )
}

/// Serializes a circuit to `.bench` text.
///
/// Constants have no `.bench` spelling, so they are emitted as
/// fanin-less `AND`/`OR` pseudo-gates with a warning comment; circuits
/// produced by this crate's generator contain no constants.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    for &pi in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.gate(pi).name()));
    }
    for &po in circuit.outputs() {
        let observed = circuit.gate(po).fanins()[0];
        out.push_str(&format!("OUTPUT({})\n", circuit.gate(observed).name()));
    }
    for (_, gate) in circuit.iter() {
        match gate.kind() {
            GateKind::Input | GateKind::Output => continue,
            GateKind::Const0 | GateKind::Const1 => {
                let func = if gate.kind() == GateKind::Const1 {
                    "OR"
                } else {
                    "AND"
                };
                out.push_str(&format!(
                    "{} = {}() # constant has no .bench spelling\n",
                    gate.name(),
                    func
                ));
            }
            kind => {
                let func = kind
                    .bench_name()
                    .expect("invariant: every non-constant logic kind has a .bench spelling");
                let args: Vec<&str> = gate
                    .fanins()
                    .iter()
                    .map(|&f| circuit.gate(f).name())
                    .collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    gate.name(),
                    func,
                    args.join(", ")
                ));
            }
        }
    }
    out
}

/// Writes a circuit to a `.bench` file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file(circuit: &Circuit, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    fs::write(path, write(circuit))?;
    Ok(())
}

fn strip_directive<'a>(line: &'a str, directive: &str) -> Option<&'a str> {
    let head = line.get(..directive.len())?;
    if head.eq_ignore_ascii_case(directive) {
        let rest = &line[directive.len()..];
        if rest.trim_start().starts_with('(') {
            return Some(rest);
        }
    }
    None
}

fn parse_parenthesized(text: &str, line: usize) -> Result<&str, NetlistError> {
    let text = text.trim();
    let inner = text
        .strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .ok_or_else(|| parse_err(line, "expected `( ... )`"))?;
    Ok(inner.trim())
}

fn check_name<'a>(
    name: &'a str,
    line: usize,
    limits: &ParseLimits,
) -> Result<&'a str, NetlistError> {
    if name.len() > limits.max_name_len {
        return Err(NetlistError::LimitExceeded {
            line,
            what: "name length",
            value: name.len(),
            limit: limits.max_name_len,
        });
    }
    Ok(name)
}

fn parse_err(line: usize, message: &str) -> NetlistError {
    NetlistError::Parse {
        line,
        col: 0,
        message: message.to_string(),
    }
}

fn at_line(err: NetlistError, line: usize) -> NetlistError {
    match err {
        e @ NetlistError::Parse { .. } | e @ NetlistError::LimitExceeded { .. } => e,
        other => NetlistError::Parse {
            line,
            col: 0,
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S27_LIKE: &str = "\
# a miniature sequential circuit in the style of s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
";

    #[test]
    fn parses_s27_like() {
        let c = parse(S27_LIKE, "s27ish").unwrap();
        assert_eq!(c.inputs().len(), 4);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_registers(), 3);
        assert_eq!(c.find("G9").map(|g| c.gate(g).kind()), Some(GateKind::Nand));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c1 = parse(S27_LIKE, "s27ish").unwrap();
        let text = write(&c1);
        let c2 = parse(&text, "s27ish").unwrap();
        assert_eq!(c1.len(), c2.len());
        assert_eq!(c1.num_registers(), c2.num_registers());
        assert_eq!(c1.inputs().len(), c2.inputs().len());
        assert_eq!(c1.outputs().len(), c2.outputs().len());
        assert_eq!(c1.num_edges(), c2.num_edges());
        // Gate-by-gate: same named gate has the same kind and fanin names.
        for (_, g1) in c1.iter() {
            if g1.kind() == GateKind::Output {
                continue;
            }
            let id2 = c2.find(g1.name()).expect("gate survives round trip");
            let g2 = c2.gate(id2);
            assert_eq!(g1.kind(), g2.kind());
            let n1: Vec<&str> = g1.fanins().iter().map(|&f| c1.gate(f).name()).collect();
            let n2: Vec<&str> = g2.fanins().iter().map(|&f| c2.gate(f).name()).collect();
            assert_eq!(n1, n2, "fanins of {}", g1.name());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let c = parse("# only a comment\n\nINPUT(a)\nOUTPUT(a)\n", "c").unwrap();
        assert_eq!(c.inputs().len(), 1);
    }

    #[test]
    fn inline_comment_stripped() {
        let c = parse("INPUT(a) # the input\nOUTPUT(a)\n", "c").unwrap();
        assert_eq!(c.inputs().len(), 1);
    }

    #[test]
    fn case_insensitive_functions() {
        let c = parse("INPUT(a)\nx = nand(a, a)\nOUTPUT(x)\n", "c").unwrap();
        assert_eq!(c.find("x").map(|g| c.gate(g).kind()), Some(GateKind::Nand));
    }

    #[test]
    fn syntax_error_carries_line_number() {
        let err = parse("INPUT(a)\nthis is nonsense\n", "c").unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_paren_is_error() {
        assert!(parse("INPUT a\n", "c").is_err());
        assert!(parse("x = AND(a, b\n", "c").is_err());
    }

    #[test]
    fn dff_arity_enforced() {
        let err = parse("INPUT(a)\nq = DFF(a, a)\n", "c").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn unknown_function_reports_line() {
        let err = parse("INPUT(a)\nx = FROB(a)\n", "c").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("minobswin_bench_test.bench");
        let c1 = parse(S27_LIKE, "s27ish").unwrap();
        write_file(&c1, &path).unwrap();
        let c2 = read_file(&path).unwrap();
        assert_eq!(c2.name(), "minobswin_bench_test");
        assert_eq!(c1.len(), c2.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn limits_reject_hostile_inputs() {
        let err = parse_with_limits(
            "INPUT(a)\nx = AND(a, a, a)\nOUTPUT(x)\n",
            "c",
            &ParseLimits::default().with_max_fanin(2),
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "fanin count",
                    line: 2,
                    ..
                }
            ),
            "{err}"
        );
        let err = parse_with_limits(S27_LIKE, "c", &ParseLimits::default().with_max_gates(4))
            .unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "gate count",
                    ..
                }
            ),
            "{err}"
        );
        let err = parse("INPUT(a)\nx = NOT(a\u{1}b)\nOUTPUT(x)\n", "c").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn output_before_definition_is_fine() {
        let c = parse("OUTPUT(x)\nINPUT(a)\nx = NOT(a)\n", "c").unwrap();
        assert_eq!(c.outputs().len(), 1);
    }
}
