//! Small hand-built circuits used by tests, examples and the figure
//! reproductions.

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::GateKind;

/// A miniature sequential benchmark in the style of ISCAS89 `s27`:
/// 4 inputs, 1 output, 3 flip-flops, 10 logic gates with feedback.
pub fn s27_like() -> Circuit {
    let mut b = CircuitBuilder::new("s27_like");
    for n in ["G0", "G1", "G2", "G3"] {
        b.input(n);
    }
    b.dff("G5", "G10").unwrap();
    b.dff("G6", "G11").unwrap();
    b.dff("G7", "G13").unwrap();
    b.gate("G14", GateKind::Not, &["G0"]).unwrap();
    b.gate("G8", GateKind::And, &["G14", "G6"]).unwrap();
    b.gate("G12", GateKind::Nor, &["G1", "G7"]).unwrap();
    b.gate("G15", GateKind::Or, &["G12", "G8"]).unwrap();
    b.gate("G16", GateKind::Or, &["G3", "G8"]).unwrap();
    b.gate("G9", GateKind::Nand, &["G16", "G15"]).unwrap();
    b.gate("G11", GateKind::Nor, &["G5", "G9"]).unwrap();
    b.gate("G10", GateKind::Nor, &["G14", "G11"]).unwrap();
    b.gate("G13", GateKind::Nand, &["G2", "G12"]).unwrap();
    b.gate("G17", GateKind::Not, &["G11"]).unwrap();
    b.output("G17").unwrap();
    b.build().expect("s27_like is valid")
}

/// A pipeline: `stages` logic gates in a chain with a register after
/// every `regs_every`-th gate, closed through a register back to the
/// front (so retiming has a loop to work with).
///
/// # Panics
///
/// Panics if `stages == 0` or `regs_every == 0`.
pub fn pipeline(stages: usize, regs_every: usize) -> Circuit {
    assert!(stages > 0 && regs_every > 0);
    let mut b = CircuitBuilder::new(format!("pipeline_{stages}_{regs_every}"));
    b.input("in");
    let mut prev = String::from("in");
    let mut reg_idx = 0;
    for i in 0..stages {
        let gname = format!("s{i}");
        // Mix in the feedback register at the front gate.
        if i == 0 {
            b.gate(&gname, GateKind::Nand, &[prev.as_str(), "fb"])
                .unwrap();
        } else {
            b.gate(&gname, GateKind::Not, &[prev.as_str()]).unwrap();
        }
        prev = gname;
        if (i + 1) % regs_every == 0 && i + 1 != stages {
            let rname = format!("r{reg_idx}");
            b.dff(&rname, &prev).unwrap();
            reg_idx += 1;
            prev = rname;
        }
    }
    b.dff("fb", &prev).unwrap();
    b.output(&prev).unwrap();
    b.build().expect("pipeline is valid")
}

/// The circuit used to reproduce the phenomenon of the paper's Fig. 1:
/// a register relocation that lowers total register observability (and
/// even the register count) but enlarges the error-latching windows of
/// the upstream gates `A` and `B`, worsening the overall SER.
///
/// Structure:
///
/// ```text
/// pi0,pi1,pi2 ─ A ─┬─ [FF qa] ─┐
///                  └─ H1 ─ [FF qh1] ─ J1 ─ po     F = XOR (slow)
/// pi1,pi2,pi3 ─ B ─┬─ [FF qb] ─┴─ F ─ G ─ po
///                  └─ H2 ─ [FF qh2] ─ J2 ─ po
/// ```
///
/// The move `r(F) = −1` pulls the registers `qa`/`qb` forward onto
/// `F`'s output: the two registers merge into one with lower
/// observability (XOR propagates everything, so `obs(F) ≈ obs(A)`,
/// replacing `obs(A) + obs(B)`), but `A` and `B` now see *two*
/// register paths of very different lengths (through slow `F` vs. fast
/// `H1`/`H2`), so their ELWs split into disjoint windows and grow — by
/// exactly 1 delay unit under the default model, as in the paper's
/// figure.
pub fn fig1_like() -> Circuit {
    let mut b = CircuitBuilder::new("fig1_like");
    for n in ["pi0", "pi1", "pi2", "pi3"] {
        b.input(n);
    }
    // Transparent (XOR) chains upstream of A and B: every chain gate is
    // fully sensitized, collects strikes at the XOR rate, and inherits
    // the ELW growth the move causes at A/B.
    b.gate("a1", GateKind::Xor, &["pi0", "pi1"]).unwrap();
    b.gate("a2", GateKind::Xor, &["a1", "pi2"]).unwrap();
    b.gate("A", GateKind::Xor, &["a2", "pi1"]).unwrap();
    b.gate("b1", GateKind::Xor, &["pi3", "pi2"]).unwrap();
    b.gate("b2", GateKind::Xor, &["b1", "pi1"]).unwrap();
    b.gate("B", GateKind::Xor, &["b2", "pi3"]).unwrap();
    b.dff("qa", "A").unwrap();
    b.dff("qb", "B").unwrap();
    b.gate("F", GateKind::Xor, &["qa", "qb"]).unwrap();
    b.gate("G", GateKind::Nand, &["F", "pi0"]).unwrap();
    b.output("G").unwrap();
    // Secondary observation paths give A and B a second ELW component;
    // they are deliberately the *shortest* register-launched paths of
    // the circuit (delay 7), so §V-style R_min lands at 7 and the
    // Fig. 1 move (which creates a launched path of delay 3 through G)
    // violates P2.
    b.gate("H1", GateKind::Not, &["A"]).unwrap();
    b.dff("qh1", "H1").unwrap();
    b.gate("J1", GateKind::And, &["qh1", "pi0"]).unwrap();
    b.gate("J1b", GateKind::Nor, &["J1", "pi1"]).unwrap();
    b.output("J1b").unwrap();
    b.gate("H2", GateKind::Not, &["B"]).unwrap();
    b.dff("qh2", "H2").unwrap();
    b.gate("J2", GateKind::And, &["qh2", "pi3"]).unwrap();
    b.gate("J2b", GateKind::Nor, &["J2", "pi2"]).unwrap();
    b.output("J2b").unwrap();
    b.build().expect("fig1_like is valid")
}

/// A two-phase "ping-pong" loop: two register stages around a ring of
/// logic. Minimal circuit where min-period retiming actually moves
/// registers.
pub fn two_stage_loop() -> Circuit {
    let mut b = CircuitBuilder::new("two_stage_loop");
    b.input("in");
    b.gate("f1", GateKind::Nand, &["in", "q2"]).unwrap();
    b.gate("f2", GateKind::Not, &["f1"]).unwrap();
    b.gate("f3", GateKind::Not, &["f2"]).unwrap();
    b.dff("q1", "f3").unwrap();
    b.gate("g1", GateKind::Not, &["q1"]).unwrap();
    b.dff("q2", "g1").unwrap();
    b.output("g1").unwrap();
    b.build().expect("two_stage_loop is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s27_like_shape() {
        let c = s27_like();
        assert_eq!(c.inputs().len(), 4);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_registers(), 3);
    }

    #[test]
    fn pipeline_register_count() {
        let c = pipeline(9, 3);
        // registers after s2 and s5, plus the feedback register.
        assert_eq!(c.num_registers(), 3);
        assert_eq!(c.inputs().len(), 1);
    }

    #[test]
    fn fig1_like_shape() {
        let c = fig1_like();
        assert_eq!(c.num_registers(), 4);
        let f = c.find("F").unwrap();
        assert_eq!(c.gate(f).kind(), GateKind::Xor);
        assert_eq!(c.outputs().len(), 3);
    }

    #[test]
    fn two_stage_loop_valid() {
        let c = two_stage_loop();
        assert_eq!(c.num_registers(), 2);
    }

    #[test]
    #[should_panic]
    fn pipeline_zero_stages_panics() {
        pipeline(0, 1);
    }
}
