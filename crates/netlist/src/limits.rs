//! Resource limits for the netlist parsers.
//!
//! Hostile or corrupt inputs (a 10 MB single line, a gate with ten
//! thousand fanins, a file declaring millions of gates) must produce a
//! structured [`crate::NetlistError::LimitExceeded`] instead of an
//! allocation blow-up or a shift overflow. Every front end
//! (`blif`, `bench_format`, `verilog`) offers a `parse_with_limits`
//! entry point taking a [`ParseLimits`]; the plain `parse` functions
//! use [`ParseLimits::default`].

/// Caps enforced while parsing a netlist file.
///
/// All limits are inclusive: a value *equal* to the limit is accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum length of one physical input line, in bytes.
    pub max_line_len: usize,
    /// Maximum number of gates (including inputs, outputs and
    /// registers) a single file may define.
    pub max_gates: usize,
    /// Maximum fanin count of a single gate.
    pub max_fanin: usize,
    /// Maximum length of a single signal or module name, in bytes.
    pub max_name_len: usize,
}

impl Default for ParseLimits {
    /// Generous defaults: far above every circuit in the paper's
    /// benchmark set, far below anything that could exhaust memory.
    fn default() -> Self {
        Self {
            max_line_len: 1 << 20, // 1 MiB
            max_gates: 1_000_000,
            max_fanin: 64,
            max_name_len: 4096,
        }
    }
}

impl ParseLimits {
    /// Limits that never trip (each cap is `usize::MAX`). For trusted
    /// machine-generated inputs only.
    pub fn unlimited() -> Self {
        Self {
            max_line_len: usize::MAX,
            max_gates: usize::MAX,
            max_fanin: usize::MAX,
            max_name_len: usize::MAX,
        }
    }

    /// Replaces the line-length cap.
    pub fn with_max_line_len(mut self, n: usize) -> Self {
        self.max_line_len = n;
        self
    }

    /// Replaces the gate-count cap.
    pub fn with_max_gates(mut self, n: usize) -> Self {
        self.max_gates = n;
        self
    }

    /// Replaces the fanin cap.
    pub fn with_max_fanin(mut self, n: usize) -> Self {
        self.max_fanin = n;
        self
    }

    /// Replaces the name-length cap.
    pub fn with_max_name_len(mut self, n: usize) -> Self {
        self.max_name_len = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_but_finite() {
        let l = ParseLimits::default();
        assert_eq!(l.max_line_len, 1 << 20);
        assert_eq!(l.max_gates, 1_000_000);
        assert_eq!(l.max_fanin, 64);
        assert_eq!(l.max_name_len, 4096);
    }

    #[test]
    fn builders_replace_one_field() {
        let l = ParseLimits::default().with_max_fanin(8).with_max_gates(10);
        assert_eq!(l.max_fanin, 8);
        assert_eq!(l.max_gates, 10);
        assert_eq!(l.max_line_len, ParseLimits::default().max_line_len);
    }

    #[test]
    fn unlimited_never_trips() {
        let l = ParseLimits::unlimited();
        assert_eq!(l.max_line_len, usize::MAX);
        assert_eq!(l.max_fanin, usize::MAX);
    }
}
