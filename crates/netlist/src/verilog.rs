//! Reader and writer for a gate-level structural Verilog subset.
//!
//! Supported constructs: one `module` with a port list, scalar
//! `input`/`output`/`wire` declarations, the gate primitives
//! `and or nand nor xor xnor not buf` (first connection is the
//! output), and D flip-flops written as `dff` instances with the port
//! order `(Q, D)` (also accepted: `DFF`, `FD`, `dff_x1`-style cell
//! names). Vectors, `assign`, behavioural blocks and hierarchies are
//! rejected with a clear error — this crate models flat gate-level
//! netlists.
//!
//! ```text
//! module counter (clk, a, y);
//!   input a;
//!   output y;
//!   wire w1, q1;
//!   nand g1 (w1, a, q1);
//!   dff  r1 (q1, w1);
//!   not  g2 (y, q1);
//! endmodule
//! ```
//!
//! (A `clk` port is tolerated and ignored; registers are implicitly
//! clocked by the single global clock, as everywhere in this suite.)

use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{BufRead, BufReader, Cursor};
use std::path::Path;

use crate::circuit::{Circuit, CircuitBuilder};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::limits::ParseLimits;
use crate::stream::{note_buffer_bytes, LineSource};

/// Parses a circuit from structural Verilog text with
/// [`ParseLimits::default`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for syntax errors and unsupported
/// constructs, [`NetlistError::LimitExceeded`] when a resource limit
/// trips, plus the structural errors of [`CircuitBuilder::build`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let src = "\
/// module tiny (a, b, y);
///   input a, b;
///   output y;
///   wire w, q;
///   and g1 (w, a, b);
///   dff r1 (q, w);
///   not g2 (y, q);
/// endmodule
/// ";
/// let c = netlist::verilog::parse(src)?;
/// assert_eq!(c.name(), "tiny");
/// assert_eq!(c.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    parse_with_limits(text, &ParseLimits::default())
}

/// Parses a circuit from structural Verilog text under explicit
/// [`ParseLimits`].
///
/// Runs the same streaming core as [`parse_reader`] over the in-memory
/// text, so the two paths are byte-identical by construction.
///
/// # Errors
///
/// As [`parse`]; the limit checks use `limits` instead of the
/// defaults.
pub fn parse_with_limits(text: &str, limits: &ParseLimits) -> Result<Circuit, NetlistError> {
    parse_reader(Cursor::new(text.as_bytes()), limits)
}

/// Parses a circuit from a structural-Verilog byte stream under
/// explicit [`ParseLimits`], without ever materializing the whole
/// input: comment stripping and `;`-statement splitting run
/// incrementally over checked lines, so transient buffering is bounded
/// by the longest single statement (see
/// [`crate::stream::parser_peak_bytes`]).
///
/// # Errors
///
/// As [`parse`], plus [`NetlistError::Io`] for read failures and
/// invalid UTF-8.
pub fn parse_reader<R: BufRead>(reader: R, limits: &ParseLimits) -> Result<Circuit, NetlistError> {
    let mut stmts = Statements::new(LineSource::new(reader, limits));
    let mut builder: Option<CircuitBuilder> = None;
    let mut outputs: Vec<String> = Vec::new();
    let mut inputs: Vec<(usize, String)> = Vec::new();
    let mut pending_gates: Vec<(usize, String, GateKind, Vec<String>)> = Vec::new();
    let mut pending_dffs: Vec<(usize, String, String)> = Vec::new();
    let mut gates = 0usize;
    let bump = |gates: &mut usize, line: usize| -> Result<(), NetlistError> {
        *gates += 1;
        if *gates > limits.max_gates {
            return Err(NetlistError::LimitExceeded {
                line,
                what: "gate count",
                value: *gates,
                limit: limits.max_gates,
            });
        }
        Ok(())
    };
    let clock_names = ["clk", "clock", "CLK"];

    while let Some((line_no, stmt)) = stmts.next_statement()? {
        let tokens: Vec<&str> = stmt.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if let Some(long) = tokens.iter().find(|t| t.len() > limits.max_name_len) {
            return Err(NetlistError::LimitExceeded {
                line: line_no,
                what: "name length",
                value: long.len(),
                limit: limits.max_name_len,
            });
        }
        match tokens[0] {
            "module" => {
                let name = tokens
                    .get(1)
                    .map(|t| t.trim_end_matches('('))
                    .filter(|t| !t.is_empty())
                    .ok_or_else(|| err(line_no, "module needs a name"))?;
                builder = Some(CircuitBuilder::new(name.to_string()));
            }
            "endmodule" => break,
            "input" => {
                for name in decl_names(&stmt["input".len()..], line_no)? {
                    if clock_names.contains(&name.as_str()) {
                        continue; // single implicit clock
                    }
                    bump(&mut gates, line_no)?;
                    inputs.push((line_no, name));
                }
            }
            "output" => {
                for name in decl_names(&stmt["output".len()..], line_no)? {
                    bump(&mut gates, line_no)?;
                    outputs.push(name);
                }
            }
            "wire" => {
                let _ = decl_names(&stmt["wire".len()..], line_no)?; // names are implicit
            }
            "assign" | "always" | "reg" | "initial" => {
                return Err(err(
                    line_no,
                    &format!("`{}` is not structural gate-level Verilog", tokens[0]),
                ));
            }
            prim => {
                let conns = parse_instance(&stmt, line_no)?;
                let lower = prim.to_ascii_lowercase();
                if lower == "dff" || lower == "fd" || lower.starts_with("dff_") {
                    if conns.len() != 2 {
                        return Err(err(line_no, "dff takes exactly (Q, D)"));
                    }
                    bump(&mut gates, line_no)?;
                    pending_dffs.push((line_no, conns[0].clone(), conns[1].clone()));
                } else {
                    let kind = match lower.as_str() {
                        "and" => GateKind::And,
                        "nand" => GateKind::Nand,
                        "or" => GateKind::Or,
                        "nor" => GateKind::Nor,
                        "xor" => GateKind::Xor,
                        "xnor" => GateKind::Xnor,
                        "not" => GateKind::Not,
                        "buf" => GateKind::Buf,
                        other => {
                            return Err(err(line_no, &format!("unsupported primitive `{other}`")))
                        }
                    };
                    if conns.len() < 2 {
                        return Err(err(line_no, "primitive needs an output and inputs"));
                    }
                    if conns.len() - 1 > limits.max_fanin {
                        return Err(NetlistError::LimitExceeded {
                            line: line_no,
                            what: "fanin count",
                            value: conns.len() - 1,
                            limit: limits.max_fanin,
                        });
                    }
                    bump(&mut gates, line_no)?;
                    pending_gates.push((line_no, conns[0].clone(), kind, conns[1..].to_vec()));
                }
            }
        }
    }

    let mut b = builder.ok_or(NetlistError::EmptyCircuit)?;
    for (line, name) in &inputs {
        b.gate(name, GateKind::Input, &[])
            .map_err(|e| at_line(e, *line))?;
    }
    for (line, out, kind, fanins) in &pending_gates {
        let refs: Vec<&str> = fanins.iter().map(String::as_str).collect();
        b.gate(out, *kind, &refs).map_err(|e| at_line(e, *line))?;
    }
    for (line, q, d) in &pending_dffs {
        b.dff(q, d).map_err(|e| at_line(e, *line))?;
    }
    for out in &outputs {
        b.output(out)?;
    }
    b.build()
}

/// Attaches the statement's line number to a builder error that lacks
/// positional context.
fn at_line(err: NetlistError, line: usize) -> NetlistError {
    match err {
        e @ NetlistError::Parse { .. } | e @ NetlistError::LimitExceeded { .. } => e,
        other => NetlistError::Parse {
            line,
            col: 0,
            message: other.to_string(),
        },
    }
}

/// Reads and parses a Verilog file, streaming: the file is never
/// materialized in memory.
///
/// # Errors
///
/// Propagates I/O errors and the errors of [`parse`].
pub fn read_file(path: impl AsRef<Path>) -> Result<Circuit, NetlistError> {
    parse_reader(BufReader::new(File::open(path)?), &ParseLimits::default())
}

/// Serializes a circuit to the structural Verilog subset.
///
/// Constants are emitted as `buf` instances driven by the literals
/// `1'b0`/`1'b1` — re-reading them requires a tool that accepts literal
/// connections, so prefer `.bench`/BLIF for lossless round trips of
/// circuits with constants (the generator never emits constants).
pub fn write(circuit: &Circuit) -> String {
    let sanitize = |s: &str| s.replace(['%', '.'], "_");
    let mut out = String::new();
    let pis: Vec<String> = circuit
        .inputs()
        .iter()
        .map(|&g| sanitize(circuit.gate(g).name()))
        .collect();
    let pos: Vec<String> = circuit
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, _)| format!("po{i}"))
        .collect();
    let mut ports = pis.clone();
    ports.extend(pos.iter().cloned());
    out.push_str(&format!(
        "module {} ({});\n",
        sanitize(circuit.name()),
        ports.join(", ")
    ));
    if !pis.is_empty() {
        out.push_str(&format!("  input {};\n", pis.join(", ")));
    }
    if !pos.is_empty() {
        out.push_str(&format!("  output {};\n", pos.join(", ")));
    }
    let wires: Vec<String> = circuit
        .iter()
        .filter(|(_, g)| !matches!(g.kind(), GateKind::Input | GateKind::Output))
        .map(|(_, g)| sanitize(g.name()))
        .collect();
    if !wires.is_empty() {
        out.push_str(&format!("  wire {};\n", wires.join(", ")));
    }
    let mut counter = 0usize;
    for (_, gate) in circuit.iter() {
        let name = sanitize(gate.name());
        let fanins: Vec<String> = gate
            .fanins()
            .iter()
            .map(|&f| sanitize(circuit.gate(f).name()))
            .collect();
        counter += 1;
        match gate.kind() {
            GateKind::Input => {}
            GateKind::Output => {}
            GateKind::Dff => {
                out.push_str(&format!("  dff r{counter} ({name}, {});\n", fanins[0]));
            }
            GateKind::Const0 => {
                out.push_str(&format!("  buf g{counter} ({name}, 1'b0);\n"));
            }
            GateKind::Const1 => {
                out.push_str(&format!("  buf g{counter} ({name}, 1'b1);\n"));
            }
            GateKind::Mux => {
                // Expand: y = (sel & b) | (~sel & a).
                out.push_str(&format!("  wire {name}_nsel, {name}_t0, {name}_t1;\n"));
                out.push_str(&format!(
                    "  not g{counter}a ({name}_nsel, {});\n",
                    fanins[0]
                ));
                out.push_str(&format!(
                    "  and g{counter}b ({name}_t0, {name}_nsel, {});\n",
                    fanins[1]
                ));
                out.push_str(&format!(
                    "  and g{counter}c ({name}_t1, {}, {});\n",
                    fanins[0], fanins[2]
                ));
                out.push_str(&format!(
                    "  or g{counter}d ({name}, {name}_t0, {name}_t1);\n"
                ));
            }
            kind => {
                let prim = match kind {
                    GateKind::And => "and",
                    GateKind::Nand => "nand",
                    GateKind::Or => "or",
                    GateKind::Nor => "nor",
                    GateKind::Xor => "xor",
                    GateKind::Xnor => "xnor",
                    GateKind::Not => "not",
                    GateKind::Buf => "buf",
                    _ => unreachable!("handled above"),
                };
                out.push_str(&format!(
                    "  {prim} g{counter} ({name}, {});\n",
                    fanins.join(", ")
                ));
            }
        }
    }
    for (i, &po) in circuit.outputs().iter().enumerate() {
        let observed = sanitize(circuit.gate(circuit.gate(po).fanins()[0]).name());
        counter += 1;
        out.push_str(&format!("  buf g{counter} (po{i}, {observed});\n"));
    }
    out.push_str("endmodule\n");
    out
}

/// Writes a circuit to a Verilog file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file(circuit: &Circuit, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    fs::write(path, write(circuit))?;
    Ok(())
}

/// Streaming `;`-statement splitter over checked input lines, with
/// comments stripped incrementally (`/* */` state carries across
/// lines). `module ... ;` headers keep their parenthesized port list
/// inside one statement. Line numbering replicates the historical
/// whole-text scanner: a statement is stamped with the line counter's
/// value at the previous `;`, newlines included in the accumulator.
struct Statements<R> {
    src: LineSource<R>,
    current: String,
    ready: VecDeque<(usize, String)>,
    start_line: usize,
    line: usize,
    in_block: bool,
    done: bool,
    tail_emitted: bool,
}

impl<R: BufRead> Statements<R> {
    fn new(src: LineSource<R>) -> Self {
        Self {
            src,
            current: String::new(),
            ready: VecDeque::new(),
            start_line: 1,
            line: 1,
            in_block: false,
            done: false,
            tail_emitted: false,
        }
    }

    fn next_statement(&mut self) -> Result<Option<(usize, String)>, NetlistError> {
        loop {
            if let Some(s) = self.ready.pop_front() {
                return Ok(Some(s));
            }
            if self.done {
                if self.tail_emitted {
                    return Ok(None);
                }
                self.tail_emitted = true;
                let tail = self.current.trim().to_string();
                self.current = String::new();
                if tail.is_empty() {
                    return Ok(None);
                }
                return Ok(Some((self.start_line, tail))); // e.g. `endmodule`
            }
            let raw = match self.src.next_line()? {
                None => {
                    self.done = true;
                    continue;
                }
                Some((_, raw)) => raw.to_string(),
            };
            self.accumulate(raw);
        }
    }

    /// Feeds one comment-stripped input line (plus its newline) into
    /// the statement accumulator.
    fn accumulate(&mut self, raw: String) {
        let mut chars = raw.chars().peekable();
        while let Some(c) = chars.next() {
            if self.in_block {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    self.in_block = false;
                }
                continue;
            }
            if c == '/' {
                match chars.peek() {
                    Some('/') => break, // line comment: drop the rest
                    Some('*') => {
                        chars.next();
                        self.in_block = true;
                        continue;
                    }
                    _ => {}
                }
            }
            if c == ';' {
                let stmt = self.current.trim().to_string();
                if !stmt.is_empty() {
                    self.ready.push_back((self.start_line, stmt));
                }
                self.current.clear();
                self.start_line = self.line;
            } else {
                self.current.push(c);
            }
        }
        // The line's terminator: counts a line and joins statements
        // spanning physical lines, exactly like the whole-text scanner.
        self.line += 1;
        self.current.push('\n');
        note_buffer_bytes(self.current.capacity());
    }
}

fn decl_names(rest: &str, line: usize) -> Result<Vec<String>, NetlistError> {
    if rest.contains('[') {
        return Err(err(
            line,
            "vector declarations are not supported (flatten first)",
        ));
    }
    Ok(rest
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect())
}

/// Parses `prim inst (out, in1, in2, ...)`; returns the connections
/// (first one is the output).
fn parse_instance(stmt: &str, line: usize) -> Result<Vec<String>, NetlistError> {
    let open = stmt
        .find('(')
        .ok_or_else(|| err(line, "instance needs a connection list"))?;
    let close = stmt
        .rfind(')')
        .ok_or_else(|| err(line, "unterminated connection list"))?;
    if close < open {
        return Err(err(line, "malformed connection list"));
    }
    let conns: Vec<String> = stmt[open + 1..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if conns.iter().any(|c| c.starts_with('.')) {
        return Err(err(line, "named port connections are not supported"));
    }
    if conns.is_empty() {
        return Err(err(line, "instance needs at least one connection"));
    }
    Ok(conns)
}

fn err(line: usize, message: &str) -> NetlistError {
    NetlistError::Parse {
        line,
        col: 0,
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
// a tiny sequential module
module tiny (clk, a, b, y, z);
  input clk;
  input a, b;
  output y, z;
  wire w, q;
  /* the datapath */
  and g1 (w, a, b);
  dff r1 (q, w);
  not g2 (y, q);
  xor g3 (z, q, a);
endmodule
";

    #[test]
    fn parses_tiny() {
        let c = parse(TINY).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.inputs().len(), 2, "clk is ignored");
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.num_registers(), 1);
        assert_eq!(c.find("w").map(|g| c.gate(g).kind()), Some(GateKind::And));
        assert_eq!(c.find("z").map(|g| c.gate(g).kind()), Some(GateKind::Xor));
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c1 = crate::samples::s27_like();
        let text = write(&c1);
        let c2 = parse(&text).unwrap();
        assert_eq!(c1.num_registers(), c2.num_registers());
        assert_eq!(c1.inputs().len(), c2.inputs().len());
        assert_eq!(c1.outputs().len(), c2.outputs().len());
        for (_, g1) in c1.iter() {
            if matches!(g1.kind(), GateKind::Output) {
                continue;
            }
            let id2 = c2.find(g1.name()).expect("gate survives");
            assert_eq!(g1.kind(), c2.gate(id2).kind(), "{}", g1.name());
        }
    }

    #[test]
    fn generated_circuit_round_trips() {
        let c1 = crate::generator::GeneratorConfig::new("vrt", 5)
            .gates(80)
            .registers(15)
            .build();
        let text = write(&c1);
        let c2 = parse(&text).unwrap();
        assert_eq!(c1.num_registers(), c2.num_registers());
        // The writer adds one observation buffer per primary output.
        assert_eq!(c1.num_edges() + c1.outputs().len(), c2.num_edges());
    }

    #[test]
    fn comments_stripped() {
        let src =
            "module m (a, y); // ports\n input a; /* in */ output y;\n buf g (y, a);\nendmodule\n";
        let c = parse(src).unwrap();
        assert_eq!(c.inputs().len(), 1);
    }

    #[test]
    fn behavioural_rejected() {
        let src = "module m (a, y);\n input a; output y;\n assign y = a;\nendmodule\n";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("assign"), "{e}");
    }

    #[test]
    fn vectors_rejected() {
        let src = "module m (a, y);\n input [3:0] a;\n output y;\nendmodule\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn named_ports_rejected() {
        let src = "module m (a, y);\n input a; output y;\n buf g (.o(y), .i(a));\nendmodule\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn unknown_primitive_rejected() {
        let src = "module m (a, y);\n input a; output y;\n latch g (y, a);\nendmodule\n";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("latch"), "{e}");
    }

    #[test]
    fn dff_cell_name_variants() {
        for cell in ["dff", "DFF", "fd", "dff_x1"] {
            let src = format!(
                "module m (a, y);\n input a; output y;\n {cell} r (q, a);\n not g (y, q);\nendmodule\n"
            );
            let c = parse(&src).unwrap_or_else(|e| panic!("{cell}: {e}"));
            assert_eq!(c.num_registers(), 1, "{cell}");
        }
    }

    #[test]
    fn limits_reject_hostile_inputs() {
        let src = "module m (a, y);\n input a; output y;\n and g (y, a, a, a);\nendmodule\n";
        let err = parse_with_limits(src, &ParseLimits::default().with_max_fanin(2)).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "fanin count",
                    ..
                }
            ),
            "{err}"
        );
        let err = parse_with_limits(TINY, &ParseLimits::default().with_max_gates(2)).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "gate count",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn deferred_builder_errors_carry_line_numbers() {
        // `w` is driven twice; the error surfaces at build time but must
        // still point at the offending statement's line.
        let src = "module m (a, y);\n input a;\n output y;\n and g1 (w, a, a);\n or g2 (w, a, a);\n buf g3 (y, w);\nendmodule\n";
        let err = parse(src).unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert!(line > 0, "line must be known"),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("minobswin_verilog_test.v");
        let c1 = crate::samples::pipeline(6, 3);
        write_file(&c1, &path).unwrap();
        let c2 = read_file(&path).unwrap();
        assert_eq!(c1.num_registers(), c2.num_registers());
        std::fs::remove_file(&path).ok();
    }
}
