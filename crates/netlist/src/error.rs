//! Error type shared by all netlist operations.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while building, parsing or validating netlists.
#[derive(Debug)]
pub enum NetlistError {
    /// A `.bench`/BLIF function name was not recognized.
    UnknownFunction(String),
    /// A fanin references a signal that is never defined.
    UnknownSignal(String),
    /// Two gates drive the same signal name.
    DuplicateSignal(String),
    /// A gate has a fanin count outside its kind's arity range.
    InvalidArity {
        /// The offending gate's name.
        gate: String,
        /// What the gate is.
        kind: String,
        /// The number of fanins it was given.
        got: usize,
    },
    /// A cycle through combinational gates only (no register on it).
    CombinationalCycle {
        /// Name of one gate on the cycle.
        witness: String,
    },
    /// A syntax error at a specific line (and, when known, column) of
    /// an input file.
    Parse {
        /// 1-based line number (0 when unknown).
        line: usize,
        /// 1-based column number; 0 when the column is unknown.
        col: usize,
        /// Explanation.
        message: String,
    },
    /// A parser resource limit was exceeded (see
    /// [`crate::limits::ParseLimits`]). Distinct from a syntax error:
    /// the input may be well-formed but is too large to accept.
    LimitExceeded {
        /// 1-based line number at which the limit tripped (0 when the
        /// limit is global, e.g. total gate count).
        line: usize,
        /// Which limit tripped (e.g. `"line length"`).
        what: &'static str,
        /// The observed value.
        value: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// The circuit is empty or otherwise structurally unusable.
    EmptyCircuit,
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownFunction(name) => {
                write!(f, "unknown gate function `{name}`")
            }
            NetlistError::UnknownSignal(name) => {
                write!(f, "signal `{name}` is used but never defined")
            }
            NetlistError::DuplicateSignal(name) => {
                write!(f, "signal `{name}` is driven more than once")
            }
            NetlistError::InvalidArity { gate, kind, got } => {
                write!(
                    f,
                    "gate `{gate}` of kind {kind} has invalid fanin count {got}"
                )
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(
                    f,
                    "combinational cycle through gate `{witness}` (no register on the loop)"
                )
            }
            NetlistError::Parse { line, col, message } => {
                write!(f, "parse error at line {line}")?;
                if *col > 0 {
                    write!(f, ", col {col}")?;
                }
                write!(f, ": {message}")
            }
            NetlistError::LimitExceeded {
                line,
                what,
                value,
                limit,
            } => {
                if *line > 0 {
                    write!(f, "resource limit exceeded at line {line}: ")?;
                } else {
                    write!(f, "resource limit exceeded: ")?;
                }
                write!(f, "{what} {value} exceeds the maximum of {limit}")
            }
            NetlistError::EmptyCircuit => write!(f, "circuit has no gates"),
            NetlistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetlistError {
    fn from(e: io::Error) -> Self {
        NetlistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::UnknownSignal("n42".into());
        assert_eq!(e.to_string(), "signal `n42` is used but never defined");
        let e = NetlistError::Parse {
            line: 7,
            col: 0,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(!e.to_string().contains("col"));
        let e = NetlistError::Parse {
            line: 7,
            col: 12,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 7, col 12"));
        let e = NetlistError::LimitExceeded {
            line: 3,
            what: "fanin count",
            value: 100,
            limit: 64,
        };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn io_error_wraps_with_source() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = NetlistError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
