//! Streaming line input for the netlist parsers.
//!
//! Every text front end (`blif`, `bench_format`, `verilog`) reads its
//! input through [`LineSource`]: a buffered line reader that fuses the
//! old whole-file [`ParseLimits`] pre-scan (line length, control
//! characters) with tokenization, so a parser sees one checked line at
//! a time and no format ever materializes the whole file. Over-long
//! lines are rejected after buffering at most `max_line_len + 2` bytes
//! — the rest of the line is *counted*, not stored, so the exact
//! offending length is still reported — which bounds a parser's
//! transient memory by the configured limit, not by the file size.
//!
//! The module also keeps a process-wide high-water mark of the bytes
//! the streaming front ends buffer ([`parser_peak_bytes`]), mirroring
//! the `ser` crate's `signature_allocs` counter: tests bracket a parse
//! with [`reset_parser_peak_bytes`] and assert the peak stays
//! independent of the input length.
//!
//! Line splitting replicates [`str::lines`] exactly: lines end at
//! `\n`, a trailing `\r` is stripped only when the line was
//! `\n`-terminated, and a final unterminated line is yielded as-is.
//! The in-memory `parse_with_limits` entry points run the same
//! streaming core over a [`std::io::Cursor`], so the streaming and
//! in-memory paths are byte-identical by construction.

use std::io::BufRead;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::NetlistError;
use crate::limits::ParseLimits;

/// High-water mark of transient parser buffer bytes (process-wide).
static PEAK_BUFFER_BYTES: AtomicUsize = AtomicUsize::new(0);

/// The high-water mark, in bytes, of the transient buffers the
/// streaming parsers have held since the last
/// [`reset_parser_peak_bytes`]: the current line, a joined BLIF
/// logical line, or an accumulating Verilog statement. It deliberately
/// excludes the [`crate::Circuit`] being built — the claim it proves
/// is that *text buffering* is bounded by [`ParseLimits`], not by the
/// input length.
pub fn parser_peak_bytes() -> usize {
    PEAK_BUFFER_BYTES.load(Ordering::Relaxed)
}

/// Resets [`parser_peak_bytes`] to zero. Tests bracket a parse with
/// this to measure one run's peak; concurrent parses share the
/// counter, so treat the value as an upper bound in parallel code.
pub fn reset_parser_peak_bytes() {
    PEAK_BUFFER_BYTES.store(0, Ordering::Relaxed);
}

/// Folds `bytes` into the high-water mark.
pub(crate) fn note_buffer_bytes(bytes: usize) {
    PEAK_BUFFER_BYTES.fetch_max(bytes, Ordering::Relaxed);
}

/// A line reader with the [`ParseLimits`] raw checks fused in.
///
/// [`LineSource::next_line`] yields `(line_number, line)` pairs with
/// the terminator stripped, erroring on over-long lines (with the
/// exact length, even though only a bounded prefix was buffered),
/// control characters other than `\t` (with a 1-based column), and
/// invalid UTF-8 (as the same `InvalidData` I/O error
/// `read_to_string` used to produce).
pub(crate) struct LineSource<R> {
    reader: R,
    buf: Vec<u8>,
    line_no: usize,
    max_line_len: usize,
    eof: bool,
}

impl<R: BufRead> LineSource<R> {
    pub(crate) fn new(reader: R, limits: &ParseLimits) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            line_no: 0,
            max_line_len: limits.max_line_len,
            eof: false,
        }
    }

    /// Reads the next line; `Ok(None)` at end of input.
    pub(crate) fn next_line(&mut self) -> Result<Option<(usize, &str)>, NetlistError> {
        if self.eof {
            return Ok(None);
        }
        self.buf.clear();
        // A line that could still be legal holds at most
        // `max_line_len + 1` bytes before its `\n` (the `+ 1` is a
        // trailing `\r` that str::lines-style splitting strips). Once
        // the buffer passes that, the line is over-long for sure:
        // stop storing and just count the remainder.
        let cap = self.max_line_len.saturating_add(2);
        let mut terminated = false;
        let mut overflow = 0usize;
        let mut last_overflow_byte = 0u8;
        loop {
            let chunk = self.reader.fill_buf().map_err(NetlistError::Io)?;
            if chunk.is_empty() {
                self.eof = true;
                if self.buf.is_empty() && overflow == 0 {
                    return Ok(None);
                }
                break;
            }
            let nl = chunk.iter().position(|&b| b == b'\n');
            let end = nl.unwrap_or(chunk.len());
            let room = cap.saturating_sub(self.buf.len());
            let stored = end.min(room);
            self.buf.extend_from_slice(&chunk[..stored]);
            if stored < end {
                overflow += end - stored;
                last_overflow_byte = chunk[end - 1];
            }
            let consumed = if nl.is_some() { end + 1 } else { end };
            self.reader.consume(consumed);
            if nl.is_some() {
                terminated = true;
                break;
            }
        }
        self.line_no += 1;
        let line_no = self.line_no;

        let mut raw_len = self.buf.len() + overflow;
        let ends_with_cr = if overflow > 0 {
            last_overflow_byte == b'\r'
        } else {
            self.buf.last() == Some(&b'\r')
        };
        if terminated && ends_with_cr {
            raw_len -= 1;
            if overflow == 0 {
                self.buf.pop();
            }
        }
        if raw_len > self.max_line_len {
            return Err(NetlistError::LimitExceeded {
                line: line_no,
                what: "line length",
                value: raw_len,
                limit: self.max_line_len,
            });
        }
        debug_assert_eq!(overflow, 0, "an overflowed line is always over the limit");
        note_buffer_bytes(self.buf.capacity());

        let line = std::str::from_utf8(&self.buf).map_err(|_| invalid_utf8())?;
        if let Some((pos, c)) = line
            .char_indices()
            .find(|&(_, c)| c.is_control() && c != '\t')
        {
            return Err(NetlistError::Parse {
                line: line_no,
                col: pos + 1,
                message: format!("control character {c:?} in input"),
            });
        }
        Ok(Some((line_no, line)))
    }
}

/// The error `std::fs::read_to_string` reports for non-UTF-8 input;
/// the streaming path validates per line but keeps the message.
fn invalid_utf8() -> NetlistError {
    NetlistError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        "stream did not contain valid UTF-8",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn collect(text: &str, limits: &ParseLimits) -> Result<Vec<(usize, String)>, NetlistError> {
        let mut src = LineSource::new(Cursor::new(text.as_bytes()), limits);
        let mut out = Vec::new();
        while let Some((no, line)) = src.next_line()? {
            out.push((no, line.to_string()));
        }
        Ok(out)
    }

    #[test]
    fn splits_like_str_lines() {
        let limits = ParseLimits::default();
        for text in [
            "a\nb\nc",
            "a\nb\nc\n",
            "a\r\nb\r\n",
            "\n\n",
            "",
            "one",
            "mixed\r\nunix\nfinal",
        ] {
            let want: Vec<(usize, String)> = text
                .lines()
                .enumerate()
                .map(|(i, l)| (i + 1, l.to_string()))
                .collect();
            assert_eq!(collect(text, &limits).unwrap(), want, "{text:?}");
        }
    }

    #[test]
    fn over_long_line_reports_exact_length_and_line() {
        let limits = ParseLimits::default().with_max_line_len(8);
        let text = format!("ok line\n{}\n", "x".repeat(1000));
        match collect(&text, &limits) {
            Err(NetlistError::LimitExceeded {
                line,
                what: "line length",
                value,
                limit,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(value, 1000);
                assert_eq!(limit, 8);
            }
            other => panic!("expected line-length error, got {other:?}"),
        }
    }

    #[test]
    fn exactly_at_limit_is_accepted_even_with_crlf() {
        let limits = ParseLimits::default().with_max_line_len(4);
        // 4 bytes + "\r\n": str::lines strips the \r, so this passes.
        assert_eq!(
            collect("abcd\r\nef\n", &limits).unwrap(),
            vec![(1, "abcd".to_string()), (2, "ef".to_string())]
        );
        assert!(collect("abcde\nef\n", &limits).is_err());
    }

    #[test]
    fn over_long_line_buffers_a_bounded_prefix() {
        let limits = ParseLimits::default().with_max_line_len(64);
        reset_parser_peak_bytes();
        let text = format!("{}\n", "y".repeat(1 << 20));
        assert!(collect(&text, &limits).is_err());
        assert!(
            parser_peak_bytes() <= 1024,
            "peak {} must stay near the 64-byte limit, not the 1 MiB line",
            parser_peak_bytes()
        );
    }

    #[test]
    fn control_characters_get_line_and_column() {
        let limits = ParseLimits::default();
        match collect("fine\nbad\u{0}here\n", &limits) {
            Err(NetlistError::Parse { line, col, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(col, 4);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Tabs are fine.
        assert!(collect("a\tb\n", &limits).is_ok());
    }

    #[test]
    fn invalid_utf8_maps_to_invalid_data_io_error() {
        let limits = ParseLimits::default();
        let mut src = LineSource::new(Cursor::new(&b"ok\n\xff\xfe\n"[..]), &limits);
        assert!(src.next_line().is_ok());
        match src.next_line() {
            Err(NetlistError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
            }
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn final_line_keeps_lone_carriage_return() {
        // str::lines only strips \r when it precedes \n.
        let limits = ParseLimits::default();
        let got = collect("abc\r", &limits);
        // \r is a control character, so the fused scan rejects it —
        // exactly like the old pre-scan did on "abc\r" via lines().
        assert!(got.is_err());
    }
}
