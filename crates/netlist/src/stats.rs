//! Summary statistics of a circuit (the "Statistics" columns of the
//! paper's Table I live at the retiming-graph level; these are the
//! netlist-level counterparts).

use std::fmt;

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Netlist-level statistics.
///
/// # Examples
///
/// ```
/// use netlist::{generator::GeneratorConfig, stats::CircuitStats};
/// let c = GeneratorConfig::new("s", 1).gates(64).registers(8).build();
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.registers, 8);
/// assert!(stats.avg_fanin() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Total gates including I/O markers and registers.
    pub total: usize,
    /// Combinational gates (everything but registers), including I/O
    /// markers.
    pub combinational: usize,
    /// Logic gates only (no I/O markers, constants or registers).
    pub logic: usize,
    /// Registers.
    pub registers: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Fanin references of logic gates and output markers (signal
    /// edges, excluding register D pins).
    pub edges: usize,
    /// Largest fanin.
    pub max_fanin: usize,
}

impl CircuitStats {
    /// Computes the statistics of a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let mut logic = 0;
        let mut edges = 0;
        let mut max_fanin = 0;
        for (_, gate) in circuit.iter() {
            match gate.kind() {
                GateKind::Dff => {}
                GateKind::Input | GateKind::Const0 | GateKind::Const1 => {}
                GateKind::Output => edges += gate.fanins().len(),
                _ => {
                    logic += 1;
                    edges += gate.fanins().len();
                    max_fanin = max_fanin.max(gate.fanins().len());
                }
            }
        }
        Self {
            total: circuit.len(),
            combinational: circuit.num_combinational(),
            logic,
            registers: circuit.num_registers(),
            inputs: circuit.inputs().len(),
            outputs: circuit.outputs().len(),
            edges,
            max_fanin,
        }
    }

    /// Average fanin of logic gates.
    pub fn avg_fanin(&self) -> f64 {
        if self.logic == 0 {
            0.0
        } else {
            self.edges as f64 / self.logic as f64
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} (logic {}), edges={}, #FF={}, PI={}, PO={}, max fanin {}",
            self.combinational,
            self.logic,
            self.edges,
            self.registers,
            self.inputs,
            self.outputs,
            self.max_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    #[test]
    fn counts_toy_circuit() {
        let mut b = CircuitBuilder::new("t");
        b.input("a");
        b.input("b");
        b.gate("x", GateKind::And, &["a", "b"]).unwrap();
        b.dff("q", "x").unwrap();
        b.gate("y", GateKind::Or, &["q", "a", "b"]).unwrap();
        b.output("y").unwrap();
        let s = CircuitStats::of(&b.build().unwrap());
        assert_eq!(s.total, 6);
        assert_eq!(s.logic, 2);
        assert_eq!(s.registers, 1);
        assert_eq!(s.edges, 2 + 3 + 1); // x + y + output marker
        assert_eq!(s.max_fanin, 3);
        assert!((s.avg_fanin() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_ff() {
        let mut b = CircuitBuilder::new("t");
        b.input("a");
        b.output("a").unwrap();
        let s = CircuitStats::of(&b.build().unwrap());
        assert!(s.to_string().contains("#FF=0"));
    }
}
