//! Circuit levelization: topological layers for data-parallel
//! evaluation.
//!
//! A *level* assigns every gate the length of its longest
//! combinational fanin chain: sources (primary inputs, register Q
//! outputs and constants) are level 0, and every other gate sits one
//! level above its deepest fanin. Gates within one level have no
//! dependencies on each other, so a simulator can evaluate a whole
//! level in parallel, level by level — and an ODC-style backward pass
//! can walk the levels in reverse with the same guarantee (a gate's
//! fanouts all sit on strictly higher levels, registers excepted).
//!
//! Besides the layers themselves, [`Levelization`] fixes a *slot
//! order*: a permutation of all gates in which every level occupies a
//! contiguous index range. Flat per-gate buffers laid out in slot
//! order can then hand each level out as one disjoint mutable slice
//! (`split_at_mut`) while earlier levels stay immutably readable —
//! safe-Rust data parallelism with no copying and no locks.
//!
//! Slot-order invariants (relied upon by `ser_engine`'s
//! `SignatureArena`; see the layout notes there):
//!
//! 1. Level 0 comes first, ordered **registers** (in
//!    [`Circuit::registers`] order), then **primary inputs** (in
//!    [`Circuit::inputs`] order), then **constants** (in id order).
//!    Registers therefore occupy slots `0..num_registers()`,
//!    contiguously.
//! 2. Levels `1..` follow in ascending order; within a level, gates
//!    are sorted by [`GateId`]. The order is a pure function of the
//!    circuit — no hash iteration, no scheduling dependence.

use crate::circuit::Circuit;
use crate::gate::{GateId, GateKind};

/// Topological layers of a circuit plus the contiguous slot order
/// described in the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Levelization {
    /// All gates in slot order (level 0 first, then level 1, ...).
    order: Vec<GateId>,
    /// `bounds[l]..bounds[l + 1]` is level `l`'s slot range.
    bounds: Vec<usize>,
    /// Gate index → level.
    level_of: Vec<u32>,
    /// Gate index → slot (position in `order`).
    slot_of: Vec<usize>,
    /// Number of registers (slots `0..registers` are register slots).
    registers: usize,
}

impl Levelization {
    /// Computes the levelization of `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut level_of = vec![0u32; n];
        // topo_order lists every non-register gate after its
        // non-register fanins; registers are level-0 sources.
        for &g in circuit.topo_order() {
            let gate = circuit.gate(g);
            if matches!(
                gate.kind(),
                GateKind::Input | GateKind::Const0 | GateKind::Const1
            ) {
                continue; // sources stay at level 0
            }
            let lvl = gate
                .fanins()
                .iter()
                .map(|&f| {
                    if circuit.gate(f).kind() == GateKind::Dff {
                        0
                    } else {
                        level_of[f.index()]
                    }
                })
                .max()
                .unwrap_or(0)
                + 1;
            level_of[g.index()] = lvl;
        }

        let num_levels = level_of
            .iter()
            .enumerate()
            .filter(|&(i, _)| circuit.gate(GateId::new(i)).kind() != GateKind::Dff)
            .map(|(_, &l)| l as usize)
            .max()
            .unwrap_or(0)
            + 1;

        // Level 0 in the fixed source order: registers, inputs,
        // constants; levels 1.. sorted by id (stable by construction:
        // we append in id order).
        let mut order = Vec::with_capacity(n);
        let mut bounds = Vec::with_capacity(num_levels + 1);
        bounds.push(0);
        order.extend_from_slice(circuit.registers());
        order.extend_from_slice(circuit.inputs());
        for (id, gate) in circuit.iter() {
            if matches!(gate.kind(), GateKind::Const0 | GateKind::Const1) {
                order.push(id);
            }
        }
        bounds.push(order.len());
        for lvl in 1..num_levels as u32 {
            for (id, gate) in circuit.iter() {
                if gate.kind() != GateKind::Dff && level_of[id.index()] == lvl {
                    order.push(id);
                }
            }
            bounds.push(order.len());
        }
        debug_assert_eq!(order.len(), n, "every gate gets exactly one slot");

        let mut slot_of = vec![0usize; n];
        for (slot, &g) in order.iter().enumerate() {
            slot_of[g.index()] = slot;
        }

        Self {
            order,
            bounds,
            level_of,
            slot_of,
            registers: circuit.num_registers(),
        }
    }

    /// Number of levels (≥ 1; level 0 is the source level).
    pub fn num_levels(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of gates (= number of slots).
    pub fn num_gates(&self) -> usize {
        self.order.len()
    }

    /// Number of register slots (slots `0..num_registers()`).
    pub fn num_registers(&self) -> usize {
        self.registers
    }

    /// The slot range of level `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_levels()`.
    pub fn level_slots(&self, l: usize) -> std::ops::Range<usize> {
        self.bounds[l]..self.bounds[l + 1]
    }

    /// The gates of level `l`, in slot order.
    ///
    /// # Panics
    ///
    /// Panics if `l >= num_levels()`.
    pub fn level(&self, l: usize) -> &[GateId] {
        &self.order[self.level_slots(l)]
    }

    /// The level of a gate (0 for registers, inputs and constants).
    pub fn level_of(&self, gate: GateId) -> usize {
        self.level_of[gate.index()] as usize
    }

    /// The slot of a gate.
    pub fn slot_of(&self, gate: GateId) -> usize {
        self.slot_of[gate.index()]
    }

    /// The gate occupying a slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= num_gates()`.
    pub fn gate_at(&self, slot: usize) -> GateId {
        self.order[slot]
    }

    /// All gates in slot order.
    pub fn slot_order(&self) -> &[GateId] {
        &self.order
    }
}

impl Circuit {
    /// Computes this circuit's [`Levelization`] (O(|V| + |E|); not
    /// cached — callers that need it repeatedly should hold on to it).
    pub fn levelize(&self) -> Levelization {
        Levelization::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::CircuitBuilder;
    use crate::samples;

    #[test]
    fn sources_are_level_zero_and_ordered() {
        let c = samples::s27_like();
        let lv = c.levelize();
        // Slot order starts with registers, then inputs.
        for (i, &q) in c.registers().iter().enumerate() {
            assert_eq!(lv.slot_of(q), i);
            assert_eq!(lv.level_of(q), 0);
        }
        for (i, &pi) in c.inputs().iter().enumerate() {
            assert_eq!(lv.slot_of(pi), c.num_registers() + i);
            assert_eq!(lv.level_of(pi), 0);
        }
        assert_eq!(lv.num_registers(), c.num_registers());
    }

    #[test]
    fn fanins_sit_on_strictly_lower_levels() {
        let c = samples::s27_like();
        let lv = c.levelize();
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Dff {
                continue;
            }
            for &f in gate.fanins() {
                assert!(
                    lv.level_of(f) < lv.level_of(id) || lv.level_of(id) == 0,
                    "{f} must be below {id}"
                );
                // Slot order refines level order for non-source gates.
                if lv.level_of(id) > 0 {
                    assert!(lv.slot_of(f) < lv.slot_of(id));
                }
            }
        }
    }

    #[test]
    fn levels_partition_all_gates() {
        let c = samples::fig1_like();
        let lv = c.levelize();
        let total: usize = (0..lv.num_levels()).map(|l| lv.level(l).len()).sum();
        assert_eq!(total, c.len());
        let mut seen = vec![false; c.len()];
        for l in 0..lv.num_levels() {
            for &g in lv.level(l) {
                assert!(!seen[g.index()], "{g} appears twice");
                seen[g.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn slot_round_trip() {
        let c = samples::s27_like();
        let lv = c.levelize();
        for (id, _) in c.iter() {
            assert_eq!(lv.gate_at(lv.slot_of(id)), id);
        }
    }

    #[test]
    fn chain_depth_matches_levels() {
        let mut b = CircuitBuilder::new("chain");
        b.input("a");
        b.gate("x1", GateKind::Not, &["a"]).unwrap();
        b.gate("x2", GateKind::Not, &["x1"]).unwrap();
        b.gate("x3", GateKind::Not, &["x2"]).unwrap();
        b.output("x3").unwrap();
        let c = b.build().unwrap();
        let lv = c.levelize();
        assert_eq!(lv.level_of(c.find("a").unwrap()), 0);
        assert_eq!(lv.level_of(c.find("x1").unwrap()), 1);
        assert_eq!(lv.level_of(c.find("x2").unwrap()), 2);
        assert_eq!(lv.level_of(c.find("x3").unwrap()), 3);
        // The marker observes x3 one level further down.
        assert_eq!(lv.num_levels(), 5);
    }

    #[test]
    fn constants_are_sources() {
        let mut b = CircuitBuilder::new("c");
        b.input("a");
        b.constant("one", true).unwrap();
        b.gate("x", GateKind::And, &["a", "one"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let lv = c.levelize();
        assert_eq!(lv.level_of(c.find("one").unwrap()), 0);
        assert_eq!(lv.level_of(c.find("x").unwrap()), 1);
    }
}
