//! # netlist — gate-level sequential circuits
//!
//! Foundation crate of the **minobswin** suite (a reproduction of
//! Lu & Zhou, *Retiming for Soft Error Minimization Under Error-Latching
//! Window Constraints*, DATE 2013). It provides:
//!
//! * [`Circuit`]/[`CircuitBuilder`]: a validated gate-level sequential
//!   netlist (every cycle must pass through a register),
//! * [`bench_format`]: the ISCAS89 `.bench` reader/writer,
//! * [`blif`]: a structural-BLIF reader/writer,
//! * [`read_path`]/[`NetlistFormat`]: the one front door for reading
//!   any supported format from disk — extension-sniffed, streaming,
//!   and limit-checked (see [`stream`]),
//! * [`generator`]: deterministic synthetic circuits, including *twins*
//!   of the 21 Table I benchmark circuits,
//! * [`DelayModel`]: integer gate delays,
//! * [`digest`]: the suite's shared FNV-1a content digests, with the
//!   self-describing `fnv1a-v1:` version tag,
//! * [`fio`]: the fault-injectable filesystem shim (seeded
//!   ENOSPC/torn-write/bit-flip/orphan plans behind `SABOTAGE_FIO_PLAN`)
//!   and the sealed-file envelope every durable write uses,
//! * [`rng`]: a reproducible PRNG shared by the whole suite,
//! * [`samples`]: hand-built circuits for tests and figure
//!   reproductions.
//!
//! # Examples
//!
//! ```
//! use netlist::{CircuitBuilder, DelayModel, GateKind};
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = CircuitBuilder::new("demo");
//! b.input("a");
//! b.gate("x", GateKind::Not, &["a"])?;
//! b.dff("q", "x")?;
//! b.gate("y", GateKind::Nand, &["q", "a"])?;
//! b.output("y")?;
//! let circuit = b.build()?;
//!
//! let delays = DelayModel::default().delays(&circuit);
//! assert_eq!(delays.len(), circuit.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_format;
pub mod blif;
mod circuit;
mod delay;
pub mod digest;
mod error;
pub mod fio;
mod gate;
pub mod generator;
mod levels;
pub mod limits;
pub mod parallel;
mod read;
pub mod rng;
pub mod samples;
pub mod stats;
pub mod stream;
pub mod verilog;

pub use circuit::{Circuit, CircuitBuilder};
pub use delay::DelayModel;
pub use error::NetlistError;
pub use gate::{Gate, GateId, GateKind};
pub use levels::Levelization;
pub use limits::ParseLimits;
pub use read::{read_path, NetlistFormat};
