//! Gate delay models.
//!
//! All delays are **integer time units** (think tenths of a gate delay
//! in some normalized technology). Integer arithmetic keeps every
//! retiming-feasibility and error-latching-window comparison exact.

use crate::gate::GateKind;
use crate::Circuit;
use crate::GateId;

/// Maps each gate to a non-negative integer delay.
///
/// The default model assigns technology-flavored relative delays
/// (inverters fast, XOR slow) plus a per-extra-fanin penalty, which is
/// enough structure for the retiming experiments; I/O markers and
/// registers have zero combinational delay (register clock-to-Q and
/// setup are modeled separately as `T_s`/`T_h` in the ELW machinery).
///
/// # Examples
///
/// ```
/// use netlist::{DelayModel, GateKind};
/// let model = DelayModel::default();
/// assert!(model.kind_delay(GateKind::Xor, 2) > model.kind_delay(GateKind::Not, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayModel {
    base: [u32; 14],
    per_extra_fanin: u32,
}

fn kind_slot(kind: GateKind) -> usize {
    match kind {
        GateKind::Input => 0,
        GateKind::Output => 1,
        GateKind::Buf => 2,
        GateKind::Not => 3,
        GateKind::And => 4,
        GateKind::Nand => 5,
        GateKind::Or => 6,
        GateKind::Nor => 7,
        GateKind::Xor => 8,
        GateKind::Xnor => 9,
        GateKind::Mux => 10,
        GateKind::Dff => 11,
        GateKind::Const0 => 12,
        GateKind::Const1 => 13,
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        let mut base = [0u32; 14];
        base[kind_slot(GateKind::Buf)] = 2;
        base[kind_slot(GateKind::Not)] = 1;
        base[kind_slot(GateKind::And)] = 4;
        base[kind_slot(GateKind::Nand)] = 3;
        base[kind_slot(GateKind::Or)] = 4;
        base[kind_slot(GateKind::Nor)] = 3;
        base[kind_slot(GateKind::Xor)] = 6;
        base[kind_slot(GateKind::Xnor)] = 6;
        base[kind_slot(GateKind::Mux)] = 5;
        Self {
            base,
            per_extra_fanin: 1,
        }
    }
}

impl DelayModel {
    /// The default technology-flavored model (same as
    /// [`DelayModel::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A model where every logic gate has delay 1 and everything else 0;
    /// useful for unit tests with hand-computable paths.
    pub fn unit() -> Self {
        let mut base = [0u32; 14];
        for kind in GateKind::logic_kinds() {
            base[kind_slot(*kind)] = 1;
        }
        base[kind_slot(GateKind::Mux)] = 1;
        Self {
            base,
            per_extra_fanin: 0,
        }
    }

    /// Overrides the delay of one gate kind, returning `self` for
    /// chaining.
    pub fn with_kind_delay(mut self, kind: GateKind, delay: u32) -> Self {
        self.base[kind_slot(kind)] = delay;
        self
    }

    /// Overrides the per-extra-fanin penalty (applied to fanins beyond
    /// the second).
    pub fn with_fanin_penalty(mut self, penalty: u32) -> Self {
        self.per_extra_fanin = penalty;
        self
    }

    /// Delay of a gate of `kind` with `fanin_count` fanins.
    pub fn kind_delay(&self, kind: GateKind, fanin_count: usize) -> u32 {
        let base = self.base[kind_slot(kind)];
        if base == 0 {
            return 0;
        }
        let extra = fanin_count.saturating_sub(2) as u32;
        base + extra * self.per_extra_fanin
    }

    /// Delay of a specific gate of a circuit.
    pub fn delay(&self, circuit: &Circuit, id: GateId) -> u32 {
        let gate = circuit.gate(id);
        self.kind_delay(gate.kind(), gate.fanins().len())
    }

    /// Delays of every gate of a circuit, indexed by [`GateId`].
    pub fn delays(&self, circuit: &Circuit) -> Vec<u32> {
        circuit
            .iter()
            .map(|(_, g)| self.kind_delay(g.kind(), g.fanins().len()))
            .collect()
    }

    /// The smallest non-zero gate delay in the circuit, if any logic gate
    /// exists. Used by the paper's §V fallback choice of `R_min`.
    pub fn min_gate_delay(&self, circuit: &Circuit) -> Option<u32> {
        circuit
            .iter()
            .map(|(_, g)| self.kind_delay(g.kind(), g.fanins().len()))
            .filter(|&d| d > 0)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    #[test]
    fn io_and_registers_are_zero_delay() {
        let m = DelayModel::default();
        assert_eq!(m.kind_delay(GateKind::Input, 0), 0);
        assert_eq!(m.kind_delay(GateKind::Output, 1), 0);
        assert_eq!(m.kind_delay(GateKind::Dff, 1), 0);
        assert_eq!(m.kind_delay(GateKind::Const1, 0), 0);
    }

    #[test]
    fn fanin_penalty_applies_past_two() {
        let m = DelayModel::default();
        let d2 = m.kind_delay(GateKind::And, 2);
        let d5 = m.kind_delay(GateKind::And, 5);
        assert_eq!(d5, d2 + 3);
    }

    #[test]
    fn unit_model_is_flat() {
        let m = DelayModel::unit();
        assert_eq!(m.kind_delay(GateKind::And, 8), 1);
        assert_eq!(m.kind_delay(GateKind::Xor, 2), 1);
        assert_eq!(m.kind_delay(GateKind::Input, 0), 0);
    }

    #[test]
    fn overrides_chain() {
        let m = DelayModel::default()
            .with_kind_delay(GateKind::And, 10)
            .with_fanin_penalty(0);
        assert_eq!(m.kind_delay(GateKind::And, 6), 10);
    }

    #[test]
    fn per_circuit_delays() {
        let mut b = CircuitBuilder::new("d");
        b.input("a");
        b.gate("x", GateKind::Not, &["a"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        let m = DelayModel::default();
        let d = m.delays(&c);
        assert_eq!(d.len(), c.len());
        assert_eq!(d[c.find("x").unwrap().index()], 1);
        assert_eq!(m.min_gate_delay(&c), Some(1));
    }
}
