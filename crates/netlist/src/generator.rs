//! Deterministic synthetic sequential-circuit generation.
//!
//! The paper evaluates on ISCAS89/ITC99 netlists obtained privately from
//! the authors of the iMinArea paper; those files are not redistributable
//! here, so this module generates *twins*: random sequential circuits
//! with the same vertex/edge/register statistics (see
//! [`table1_twins`]). Generation is fully deterministic in the seed
//! (see [`crate::rng`]).

use crate::circuit::{Circuit, CircuitBuilder};
use crate::gate::GateKind;
use crate::rng::Xoshiro256;

/// Parameters for random sequential circuit generation.
///
/// # Examples
///
/// ```
/// use netlist::generator::GeneratorConfig;
/// let circuit = GeneratorConfig::new("demo", 42)
///     .gates(200)
///     .registers(40)
///     .inputs(8)
///     .outputs(8)
///     .target_edges(440)
///     .build();
/// assert_eq!(circuit.num_registers(), 40);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    name: String,
    seed: u64,
    num_inputs: usize,
    num_outputs: usize,
    num_gates: usize,
    num_registers: usize,
    target_edges: usize,
    max_fanin: usize,
    xor_fraction: f64,
}

impl GeneratorConfig {
    /// Starts a configuration with sensible small defaults.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        Self {
            name: name.into(),
            seed,
            num_inputs: 8,
            num_outputs: 8,
            num_gates: 100,
            num_registers: 16,
            target_edges: 220,
            max_fanin: 5,
            xor_fraction: 0.05,
        }
    }

    /// Sets the number of primary inputs (at least 1).
    pub fn inputs(mut self, n: usize) -> Self {
        self.num_inputs = n.max(1);
        self
    }

    /// Sets the number of primary outputs (at least 1).
    pub fn outputs(mut self, n: usize) -> Self {
        self.num_outputs = n.max(1);
        self
    }

    /// Sets the number of logic gates (at least 2).
    pub fn gates(mut self, n: usize) -> Self {
        self.num_gates = n.max(2);
        self
    }

    /// Sets the number of registers (may be 0 for a combinational-only
    /// circuit).
    pub fn registers(mut self, n: usize) -> Self {
        self.num_registers = n;
        self
    }

    /// Sets the target total number of fanin references of logic gates;
    /// the paper's `|E|` column is matched through this knob.
    pub fn target_edges(mut self, n: usize) -> Self {
        self.target_edges = n;
        self
    }

    /// Sets the maximum fanin of generated gates.
    pub fn max_fanin(mut self, n: usize) -> Self {
        self.max_fanin = n.max(1);
        self
    }

    /// Fraction of multi-input gates that are XOR/XNOR (slow gates; they
    /// stress the ELW machinery).
    pub fn xor_fraction(mut self, f: f64) -> Self {
        self.xor_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Generates the circuit.
    ///
    /// Structure: a layered random DAG of logic gates whose fanins are
    /// drawn from primary inputs, register outputs and earlier gates
    /// (guaranteeing combinational acyclicity); every register's D input
    /// is drawn from the later half of the gate list, creating the long
    /// feedback loops that make retiming interesting.
    ///
    /// # Panics
    ///
    /// Never panics for configurations produced through the builder
    /// methods (they clamp their arguments).
    pub fn build(&self) -> Circuit {
        let mut rng = Xoshiro256::seed_from_u64(self.seed);
        let mut b = CircuitBuilder::new(self.name.clone());

        let pi_names: Vec<String> = (0..self.num_inputs).map(|i| format!("pi{i}")).collect();
        for n in &pi_names {
            b.input(n);
        }
        // Registers split two ways, as in synthesized netlists: deep
        // feedback registers (q*) and inline pipeline registers wrapped
        // around gate fanins (qr*) — the pattern retiming collapses
        // (parallel input registers merge into one output register).
        let feedback_regs = if self.num_registers == 0 {
            0
        } else {
            (self.num_registers * 2 / 5).max(1)
        };
        let mut inline_budget = self.num_registers - feedback_regs;
        let mut inline_counter = 0usize;
        let reg_names: Vec<String> = (0..feedback_regs).map(|i| format!("q{i}")).collect();
        let gate_names: Vec<String> = (0..self.num_gates).map(|i| format!("n{i}")).collect();

        // Candidate fanin pool grows as gates are emitted. Track use
        // counts so we can bias toward unused signals and avoid dangles.
        let mut pool: Vec<String> = pi_names.clone();
        pool.extend(reg_names.iter().cloned());
        let mut use_count: Vec<usize> = vec![0; pool.len()];
        // Gates that drive nothing yet; consumed eagerly so that almost
        // every gate ends up observed (dead logic would trivialize the
        // SER comparison).
        let mut undriven: Vec<usize> = Vec::new();

        let mut remaining_edges = self.target_edges.max(self.num_gates) as f64;
        for (i, gname) in gate_names.iter().enumerate() {
            let remaining_gates = (self.num_gates - i) as f64;
            let avg = (remaining_edges / remaining_gates).max(1.0);
            let base = avg.floor() as usize;
            let fanin_count = (base + usize::from(rng.gen_bool(avg - base as f64)))
                .clamp(1, self.max_fanin.min(pool.len()));
            remaining_edges -= fanin_count as f64;

            let mut fanins: Vec<usize> = Vec::with_capacity(fanin_count);
            for k in 0..fanin_count {
                // First fanin of the first gates: round-robin over the
                // PIs and register outputs so that every source drives
                // something. Afterwards, preferentially consume a gate
                // nothing reads yet; fall back to a window favouring
                // recent gates (locality, like real netlists).
                let sources = self.num_inputs + feedback_regs;
                let idx = if k == 0 && i < sources {
                    i
                } else if k == 0 {
                    pop_undriven(&mut undriven, &use_count, &mut rng)
                        .unwrap_or_else(|| random_local(pool.len(), &mut rng))
                } else {
                    random_local(pool.len(), &mut rng)
                };
                if !fanins.contains(&idx) {
                    fanins.push(idx);
                }
            }
            // Spend the inline register budget: with the remaining
            // budget spread over the remaining fanin slots, wrap this
            // gate's fanins in fresh pipeline registers (all of them,
            // so the group is retiming-collapsible), but never the
            // round-robin coverage fanin of the first gates.
            let slots_left = remaining_edges.max(1.0) + fanin_count as f64;
            let wrap = inline_budget >= fanins.len()
                && fanins.len() >= 2
                && i >= self.num_inputs + feedback_regs
                && rng.gen_bool((inline_budget as f64 / slots_left).min(0.9));
            let fanin_refs: Vec<String> = if wrap {
                fanins
                    .iter()
                    .map(|&idx| {
                        let reg = format!("qr{inline_counter}");
                        inline_counter += 1;
                        inline_budget -= 1;
                        b.dff(&reg, &pool[idx]).expect("unique register name");
                        reg
                    })
                    .collect()
            } else {
                fanins.iter().map(|&idx| pool[idx].clone()).collect()
            };
            let fanin_refs: Vec<&str> = fanin_refs.iter().map(String::as_str).collect();
            let kind = self.pick_kind(fanin_refs.len(), &mut rng);
            b.gate(gname, kind, &fanin_refs)
                .expect("generated names are unique");
            for &i in &fanins {
                use_count[i] += 1;
            }
            undriven.push(pool.len());
            pool.push(gname.clone());
            use_count.push(0);
        }

        // Feedback registers: D inputs from the later half of the gates
        // (deep feedback), distinct where possible.
        let lo = self.num_gates / 2;
        for rname in &reg_names {
            let pick = lo + rng.gen_range(self.num_gates - lo);
            b.dff(rname, &gate_names[pick])
                .expect("unique register name");
        }
        // Leftover inline budget (e.g. tiny circuits): burn it as a
        // register chain on the last gate so the configured count
        // holds; observe the chain end so nothing dangles.
        let mut prev = gate_names.last().expect("at least one gate").clone();
        let burn_chain = inline_budget > 0;
        while inline_budget > 0 {
            let reg = format!("qr{inline_counter}");
            inline_counter += 1;
            inline_budget -= 1;
            b.dff(&reg, &prev).expect("unique register name");
            prev = reg;
        }
        if burn_chain {
            b.gate("qr_tail", GateKind::Buf, &[prev.as_str()])
                .expect("unique name");
            b.output("qr_tail").expect("distinct output");
        }

        // Outputs: prefer gates that drive nothing yet.
        let gate_base = self.num_inputs + feedback_regs;
        let mut dangling: Vec<usize> = (0..self.num_gates)
            .filter(|&i| use_count[gate_base + i] == 0)
            .collect();
        rng.shuffle(&mut dangling);
        let mut chosen: Vec<usize> = dangling.iter().copied().take(self.num_outputs).collect();
        while chosen.len() < self.num_outputs {
            let pick = rng.gen_range(self.num_gates);
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        // Any remaining dangling gates also become outputs so that no
        // logic is observably dead (dead logic has zero observability
        // and would make the SER comparison trivially easy).
        for &d in &dangling {
            if !chosen.contains(&d) {
                chosen.push(d);
            }
        }
        for &g in &chosen {
            b.output(&gate_names[g]).expect("distinct outputs");
        }

        b.build()
            .expect("generator invariants guarantee a valid circuit")
    }

    fn pick_kind(&self, fanins: usize, rng: &mut Xoshiro256) -> GateKind {
        if fanins == 1 {
            return if rng.gen_bool(0.7) {
                GateKind::Not
            } else {
                GateKind::Buf
            };
        }
        if rng.gen_bool(self.xor_fraction) {
            return if rng.gen_bool(0.5) {
                GateKind::Xor
            } else {
                GateKind::Xnor
            };
        }
        match rng.gen_range(4) {
            0 => GateKind::And,
            1 => GateKind::Nand,
            2 => GateKind::Or,
            _ => GateKind::Nor,
        }
    }
}

/// Pops a still-undriven pool index, lazily skipping entries that were
/// driven since they were pushed. Amortized O(1).
fn pop_undriven(
    undriven: &mut Vec<usize>,
    use_count: &[usize],
    rng: &mut Xoshiro256,
) -> Option<usize> {
    while !undriven.is_empty() {
        let slot = rng.gen_range(undriven.len());
        let idx = undriven.swap_remove(slot);
        if use_count[idx] == 0 {
            return Some(idx);
        }
    }
    None
}

fn random_local(len: usize, rng: &mut Xoshiro256) -> usize {
    // 70%: among the most recent quarter; 30%: anywhere.
    if len >= 8 && rng.gen_bool(0.7) {
        let window = (len / 4).max(1);
        len - 1 - rng.gen_range(window)
    } else {
        rng.gen_range(len)
    }
}

/// Statistics row of the paper's Table I used to synthesize a twin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// `|V|`: combinational vertices of the retiming graph.
    pub v: usize,
    /// `|E|`: edges of the retiming graph.
    pub e: usize,
    /// `#FF`: registers in the original circuit.
    pub ff: usize,
}

/// The statistics columns of Table I for all 21 circuits.
pub const TABLE1_ROWS: [Table1Row; 21] = [
    Table1Row {
        name: "s13207",
        v: 7952,
        e: 10896,
        ff: 1508,
    },
    Table1Row {
        name: "s15850.1",
        v: 9773,
        e: 13566,
        ff: 1567,
    },
    Table1Row {
        name: "s35932",
        v: 16066,
        e: 28588,
        ff: 5814,
    },
    Table1Row {
        name: "s38417",
        v: 22180,
        e: 31127,
        ff: 2806,
    },
    Table1Row {
        name: "s38584.1",
        v: 19254,
        e: 33060,
        ff: 7371,
    },
    Table1Row {
        name: "b14_1_opt",
        v: 4049,
        e: 9036,
        ff: 2382,
    },
    Table1Row {
        name: "b14_opt",
        v: 5348,
        e: 11849,
        ff: 2041,
    },
    Table1Row {
        name: "b15_1_opt",
        v: 7421,
        e: 16946,
        ff: 2798,
    },
    Table1Row {
        name: "b15_opt",
        v: 7023,
        e: 15856,
        ff: 2415,
    },
    Table1Row {
        name: "b17_1_opt",
        v: 23026,
        e: 52376,
        ff: 8791,
    },
    Table1Row {
        name: "b17_opt",
        v: 22758,
        e: 51622,
        ff: 7787,
    },
    Table1Row {
        name: "b18_1_opt",
        v: 68282,
        e: 151746,
        ff: 21027,
    },
    Table1Row {
        name: "b18_opt",
        v: 69914,
        e: 155355,
        ff: 20907,
    },
    Table1Row {
        name: "b19_1",
        v: 212729,
        e: 410577,
        ff: 59580,
    },
    Table1Row {
        name: "b19",
        v: 224625,
        e: 433583,
        ff: 60801,
    },
    Table1Row {
        name: "b20_1_opt",
        v: 10166,
        e: 22456,
        ff: 3462,
    },
    Table1Row {
        name: "b20_opt",
        v: 11958,
        e: 26479,
        ff: 4761,
    },
    Table1Row {
        name: "b21_1_opt",
        v: 9663,
        e: 21246,
        ff: 2451,
    },
    Table1Row {
        name: "b21_opt",
        v: 12135,
        e: 26686,
        ff: 4186,
    },
    Table1Row {
        name: "b22_1_opt",
        v: 14957,
        e: 32663,
        ff: 4398,
    },
    Table1Row {
        name: "b22_opt",
        v: 17330,
        e: 37941,
        ff: 5556,
    },
];

/// Builds the synthetic twin of one Table I circuit, scaled down by
/// `scale` (1 = full size). The twin matches `|V|/scale`, `|E|/scale`
/// and `#FF/scale` up to rounding and generator granularity.
///
/// # Panics
///
/// Panics if `scale == 0`.
pub fn table1_twin(row: &Table1Row, scale: usize) -> Circuit {
    assert!(scale > 0, "scale must be positive");
    let v = (row.v / scale).max(16);
    let e = (row.e / scale).max(v + 8);
    let ff = (row.ff / scale).max(2);
    // I/O counts in the ISCAS/ITC suites are tiny compared to |V|.
    let pis = (v / 200).clamp(4, 64);
    let pos = (v / 200).clamp(4, 64);
    let gates = v.saturating_sub(pis + pos).max(8);
    let mut seed = 0xD47E_2013u64;
    for byte in row.name.bytes() {
        seed = seed.wrapping_mul(131).wrapping_add(byte as u64);
    }
    let mut c = GeneratorConfig::new(format!("{}_twin", row.name), seed)
        .inputs(pis)
        .outputs(pos)
        .gates(gates)
        .registers(ff)
        .target_edges(e.saturating_sub(pos))
        .max_fanin(6)
        .build();
    if scale != 1 {
        let name = format!("{}_twin_s{}", row.name, scale);
        c.set_name(name);
    }
    c
}

/// Builds twins of all 21 Table I circuits at the given scale.
pub fn table1_twins(scale: usize) -> Vec<Circuit> {
    TABLE1_ROWS.iter().map(|r| table1_twin(r, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CircuitStats;

    #[test]
    fn deterministic_for_same_seed() {
        let a = GeneratorConfig::new("d", 7)
            .gates(150)
            .registers(20)
            .build();
        let b = GeneratorConfig::new("d", 7)
            .gates(150)
            .registers(20)
            .build();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::new("d", 7)
            .gates(150)
            .registers(20)
            .build();
        let b = GeneratorConfig::new("d", 8)
            .gates(150)
            .registers(20)
            .build();
        assert_ne!(a, b);
    }

    #[test]
    fn respects_counts() {
        let c = GeneratorConfig::new("c", 3)
            .inputs(10)
            .outputs(6)
            .gates(300)
            .registers(45)
            .build();
        assert_eq!(c.inputs().len(), 10);
        assert!(c.outputs().len() >= 6, "dangles may add outputs");
        assert_eq!(c.num_registers(), 45);
    }

    #[test]
    fn no_dead_logic() {
        let c = GeneratorConfig::new("c", 9)
            .gates(200)
            .registers(30)
            .build();
        for (id, gate) in c.iter() {
            if gate.kind() == GateKind::Output {
                continue;
            }
            assert!(
                !c.fanouts(id).is_empty(),
                "gate {} ({}) drives nothing",
                gate.name(),
                gate.kind()
            );
        }
    }

    #[test]
    fn edge_target_roughly_met() {
        let target = 800;
        let c = GeneratorConfig::new("c", 5)
            .gates(400)
            .registers(50)
            .target_edges(target)
            .build();
        let stats = CircuitStats::of(&c);
        // Logic-gate fanin references; duplicates are dropped by the
        // generator so allow 15% slack below, plus PO marker edges above.
        assert!(
            stats.edges >= target * 85 / 100
                && stats.edges <= target + c.outputs().len() + c.num_registers(),
            "edges = {} vs target {}",
            stats.edges,
            target
        );
    }

    #[test]
    fn twin_sizes_track_table() {
        let row = &TABLE1_ROWS[5]; // b14_1_opt, smallest
        let c = table1_twin(row, 4);
        let comb = c.num_combinational();
        let want = row.v / 4;
        assert!(
            (comb as i64 - want as i64).unsigned_abs() as usize <= want / 5 + 64,
            "comb {} vs want {}",
            comb,
            want
        );
        assert_eq!(c.num_registers(), row.ff / 4);
    }

    #[test]
    fn twin_names() {
        let row = &TABLE1_ROWS[0];
        assert_eq!(table1_twin(row, 1).name(), "s13207_twin");
        assert_eq!(table1_twin(row, 8).name(), "s13207_twin_s8");
    }

    #[test]
    fn all_rows_parse_small_scale() {
        // Scale far down so the whole suite builds fast in tests.
        for row in TABLE1_ROWS.iter() {
            let c = table1_twin(row, 64);
            assert!(c.num_registers() >= 2, "{}", row.name);
            assert!(c.num_combinational() >= 16, "{}", row.name);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        table1_twin(&TABLE1_ROWS[0], 0);
    }
}
