//! Gate kinds and single-gate records.

use std::fmt;

use crate::error::NetlistError;

/// Identifier of a gate inside a [`Circuit`](crate::Circuit).
///
/// `GateId`s are dense indices assigned in insertion order, so they can
/// be used to index side tables (`Vec<T>` keyed by gate).
///
/// # Examples
///
/// ```
/// use netlist::GateId;
/// let id = GateId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(u32);

impl GateId {
    /// Creates an id from a dense index.
    pub fn new(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index exceeds u32"))
    }

    /// Returns the dense index of this gate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The logic function (or structural role) of a gate.
///
/// The set covers everything appearing in ISCAS89 `.bench` files and in
/// the structural BLIF subset we read: primary inputs/outputs, the basic
/// gate library, D flip-flops and constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// Primary output marker (one fanin, no fanouts).
    Output,
    /// Buffer.
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary NAND.
    Nand,
    /// N-ary OR.
    Or,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
    /// Two-input multiplexer: fanins are `[sel, a, b]`, output is
    /// `a` when `sel = 0` and `b` when `sel = 1`.
    Mux,
    /// Edge-triggered D flip-flop (one fanin: D; output: Q).
    Dff,
    /// Constant 0.
    Const0,
    /// Constant 1.
    Const1,
}

impl GateKind {
    /// Whether the gate belongs to the combinational part of the circuit
    /// (everything except [`GateKind::Dff`]).
    ///
    /// Note that [`GateKind::Input`] and [`GateKind::Output`] count as
    /// combinational vertices: they become zero-delay vertices of the
    /// retiming graph attached to the host.
    pub fn is_combinational(self) -> bool {
        self != GateKind::Dff
    }

    /// Whether the gate is a register.
    pub fn is_register(self) -> bool {
        self == GateKind::Dff
    }

    /// The inclusive range of fanin counts this kind accepts.
    pub fn arity(self) -> (usize, usize) {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => (0, 0),
            GateKind::Output | GateKind::Buf | GateKind::Not | GateKind::Dff => (1, 1),
            GateKind::Mux => (3, 3),
            // .bench files in the wild occasionally use 1-input AND/OR as
            // buffers, so accept a single fanin for the n-ary kinds.
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => (1, usize::MAX),
        }
    }

    /// Evaluates the gate on boolean fanin values.
    ///
    /// For [`GateKind::Dff`] this returns the D input (the *next* state);
    /// sequential semantics live in the simulator.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is outside [`GateKind::arity`].
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        let (lo, hi) = self.arity();
        assert!(
            inputs.len() >= lo && inputs.len() <= hi,
            "{self} expects {lo}..={hi} fanins, got {}",
            inputs.len()
        );
        match self {
            GateKind::Input => false,
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Output | GateKind::Buf | GateKind::Dff => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
        }
    }

    /// Parses an ISCAS89 `.bench` function name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownFunction`] for unrecognized names.
    pub fn from_bench_name(name: &str) -> Result<Self, NetlistError> {
        match name.to_ascii_uppercase().as_str() {
            "AND" => Ok(GateKind::And),
            "NAND" => Ok(GateKind::Nand),
            "OR" => Ok(GateKind::Or),
            "NOR" => Ok(GateKind::Nor),
            "NOT" | "INV" => Ok(GateKind::Not),
            "BUF" | "BUFF" => Ok(GateKind::Buf),
            "XOR" => Ok(GateKind::Xor),
            "XNOR" => Ok(GateKind::Xnor),
            "MUX" => Ok(GateKind::Mux),
            "DFF" | "FF" => Ok(GateKind::Dff),
            other => Err(NetlistError::UnknownFunction(other.to_string())),
        }
    }

    /// The `.bench` function name for this kind, if it has one.
    pub fn bench_name(self) -> Option<&'static str> {
        match self {
            GateKind::And => Some("AND"),
            GateKind::Nand => Some("NAND"),
            GateKind::Or => Some("OR"),
            GateKind::Nor => Some("NOR"),
            GateKind::Not => Some("NOT"),
            GateKind::Buf => Some("BUF"),
            GateKind::Xor => Some("XOR"),
            GateKind::Xnor => Some("XNOR"),
            GateKind::Mux => Some("MUX"),
            GateKind::Dff => Some("DFF"),
            GateKind::Input | GateKind::Output | GateKind::Const0 | GateKind::Const1 => None,
        }
    }

    /// All kinds that can appear as internal logic gates in generated
    /// circuits (excludes I/O markers, registers and constants).
    pub fn logic_kinds() -> &'static [GateKind] {
        &[
            GateKind::And,
            GateKind::Nand,
            GateKind::Or,
            GateKind::Nor,
            GateKind::Not,
            GateKind::Buf,
            GateKind::Xor,
            GateKind::Xnor,
        ]
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Output => "OUTPUT",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
            other => other.bench_name().unwrap_or("?"),
        };
        f.write_str(s)
    }
}

/// One gate of a circuit: its name, kind and fanin list.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Gate {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<GateId>,
}

impl Gate {
    /// The user-visible signal name of this gate's output.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The gate's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The gate's fanin signals, in functional order.
    pub fn fanins(&self) -> &[GateId] {
        &self.fanins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic_gates() {
        use GateKind::*;
        assert!(And.eval_bool(&[true, true]));
        assert!(!And.eval_bool(&[true, false]));
        assert!(!Nand.eval_bool(&[true, true]));
        assert!(Or.eval_bool(&[false, true]));
        assert!(Nor.eval_bool(&[false, false]));
        assert!(Xor.eval_bool(&[true, false, false]));
        assert!(!Xor.eval_bool(&[true, true, false, false]));
        assert!(Xnor.eval_bool(&[true, true]));
        assert!(Not.eval_bool(&[false]));
        assert!(Buf.eval_bool(&[true]));
        assert!(Const1.eval_bool(&[]));
        assert!(!Const0.eval_bool(&[]));
    }

    #[test]
    fn eval_mux() {
        // [sel, a, b]
        assert!(!GateKind::Mux.eval_bool(&[false, false, true]));
        assert!(GateKind::Mux.eval_bool(&[true, false, true]));
        assert!(GateKind::Mux.eval_bool(&[false, true, false]));
    }

    #[test]
    fn eval_wide_gates() {
        let inputs = vec![true; 9];
        assert!(GateKind::And.eval_bool(&inputs));
        assert!(GateKind::Xor.eval_bool(&inputs)); // odd parity
    }

    #[test]
    #[should_panic(expected = "fanins")]
    fn eval_bad_arity_panics() {
        GateKind::Not.eval_bool(&[true, false]);
    }

    #[test]
    fn bench_name_round_trip() {
        for kind in GateKind::logic_kinds() {
            let name = kind.bench_name().expect("logic kinds have names");
            assert_eq!(GateKind::from_bench_name(name).expect("parses"), *kind);
        }
        assert_eq!(
            GateKind::from_bench_name("dff").expect("case-insensitive"),
            GateKind::Dff
        );
        assert!(GateKind::from_bench_name("FOO").is_err());
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(GateKind::Input.arity(), (0, 0));
        assert_eq!(GateKind::Dff.arity(), (1, 1));
        assert_eq!(GateKind::Mux.arity(), (3, 3));
        let (lo, hi) = GateKind::Nand.arity();
        assert_eq!(lo, 1);
        assert_eq!(hi, usize::MAX);
    }

    #[test]
    fn gate_id_display_and_index() {
        let id = GateId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "g17");
    }

    #[test]
    fn combinational_classification() {
        assert!(GateKind::And.is_combinational());
        assert!(GateKind::Input.is_combinational());
        assert!(!GateKind::Dff.is_combinational());
        assert!(GateKind::Dff.is_register());
    }
}
