//! Reader and writer for a structural subset of the Berkeley BLIF
//! format.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names`
//! (single-output covers that correspond to the gate library: constant,
//! buffer, inverter, AND, OR, NAND, NOR, XOR, XNOR), `.latch`, `.end`,
//! comments and `\` line continuation. Arbitrary sum-of-product covers
//! that do not match a library gate are rejected with a clear error —
//! this crate models circuits at the gate level, not as LUT networks.

use std::fs::{self, File};
use std::io::{BufRead, BufReader, Cursor};
use std::path::Path;

use crate::circuit::{Circuit, CircuitBuilder};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::limits::ParseLimits;
use crate::stream::{note_buffer_bytes, LineSource};

/// Parses a circuit from BLIF text with [`ParseLimits::default`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] on syntax errors or unsupported
/// covers, [`NetlistError::LimitExceeded`] when a resource limit
/// trips, plus the structural errors of [`CircuitBuilder::build`].
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let src = "\
/// .model tiny
/// .inputs a b
/// .outputs y
/// .latch x q 0
/// .names a q x
/// 11 1
/// .names q b y
/// 0- 1
/// -0 1
/// .end
/// ";
/// let c = netlist::blif::parse(src)?;
/// assert_eq!(c.name(), "tiny");
/// assert_eq!(c.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    parse_with_limits(text, &ParseLimits::default())
}

/// Parses a circuit from BLIF text under explicit [`ParseLimits`].
///
/// Runs the same streaming core as [`parse_reader`] over the in-memory
/// text, so the two paths are byte-identical by construction.
///
/// # Errors
///
/// As [`parse`]; the limit checks use `limits` instead of the
/// defaults.
pub fn parse_with_limits(text: &str, limits: &ParseLimits) -> Result<Circuit, NetlistError> {
    parse_reader(Cursor::new(text.as_bytes()), limits)
}

/// BLIF logical lines: raw lines with comments stripped and `\`
/// continuations joined, streamed one at a time with a one-line
/// push-back (the `.names` cover scanner reads one directive too far).
struct LogicalLines<R> {
    src: LineSource<R>,
    pushed: Option<(usize, String)>,
}

impl<R: BufRead> LogicalLines<R> {
    fn new(reader: R, limits: &ParseLimits) -> Self {
        Self {
            src: LineSource::new(reader, limits),
            pushed: None,
        }
    }

    fn next_logical(&mut self) -> Result<Option<(usize, String)>, NetlistError> {
        if let Some(l) = self.pushed.take() {
            return Ok(Some(l));
        }
        let mut pending: Option<(usize, String)> = None;
        while let Some((line_no, raw)) = self.src.next_line()? {
            let stripped = match raw.find('#') {
                Some(p) => &raw[..p],
                None => raw,
            };
            let (body, continued) = match stripped.trim_end().strip_suffix('\\') {
                Some(b) => (b, true),
                None => (stripped, false),
            };
            match pending.take() {
                Some((start, mut acc)) => {
                    acc.push(' ');
                    acc.push_str(body);
                    note_buffer_bytes(acc.capacity());
                    if continued {
                        pending = Some((start, acc));
                    } else {
                        return Ok(Some((start, acc)));
                    }
                }
                None => {
                    if continued {
                        pending = Some((line_no, body.to_string()));
                    } else {
                        return Ok(Some((line_no, body.to_string())));
                    }
                }
            }
        }
        Ok(pending) // a trailing continuation at EOF is still a line
    }

    fn push_back(&mut self, line: (usize, String)) {
        self.pushed = Some(line);
    }
}

/// Parses a circuit from a BLIF byte stream under explicit
/// [`ParseLimits`], without ever materializing the whole input: the
/// limit checks run fused into line reading, and transient buffering
/// is bounded by `limits.max_line_len`, not the stream length (see
/// [`crate::stream::parser_peak_bytes`]).
///
/// # Errors
///
/// As [`parse`], plus [`NetlistError::Io`] for read failures and
/// invalid UTF-8.
pub fn parse_reader<R: BufRead>(reader: R, limits: &ParseLimits) -> Result<Circuit, NetlistError> {
    let mut name = String::from("blif");
    let mut builder: Option<CircuitBuilder> = None;
    let mut outputs: Vec<String> = Vec::new();
    let mut gates = 0usize;
    let mut lines = LogicalLines::new(reader, limits);

    while let Some((line, content)) = lines.next_logical()? {
        let tokens: Vec<&str> = content.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if let Some(long) = tokens.iter().find(|t| t.len() > limits.max_name_len) {
            return Err(NetlistError::LimitExceeded {
                line,
                what: "name length",
                value: long.len(),
                limit: limits.max_name_len,
            });
        }
        match tokens[0] {
            ".model" => {
                if let Some(model_name) = tokens.get(1) {
                    name = (*model_name).to_string();
                }
                if builder.is_none() {
                    builder = Some(CircuitBuilder::new(name.clone()));
                }
            }
            ".inputs" => {
                let b = builder.get_or_insert_with(|| CircuitBuilder::new(name.clone()));
                for t in &tokens[1..] {
                    bump_gates(&mut gates, line, limits)?;
                    b.gate(t, GateKind::Input, &[])
                        .map_err(|e| parse_err(line, &e.to_string()))?;
                }
            }
            ".outputs" => {
                for t in &tokens[1..] {
                    bump_gates(&mut gates, line, limits)?;
                    outputs.push((*t).to_string());
                }
                builder.get_or_insert_with(|| CircuitBuilder::new(name.clone()));
            }
            ".latch" => {
                let b = builder.get_or_insert_with(|| CircuitBuilder::new(name.clone()));
                // .latch <input> <output> [<type> <control>] [<init>]
                if tokens.len() < 3 {
                    return Err(parse_err(line, ".latch needs input and output"));
                }
                bump_gates(&mut gates, line, limits)?;
                b.dff(tokens[2], tokens[1])
                    .map_err(|e| parse_err(line, &e.to_string()))?;
            }
            ".names" => {
                let b = builder.get_or_insert_with(|| CircuitBuilder::new(name.clone()));
                if tokens.len() < 2 {
                    return Err(parse_err(line, ".names needs at least an output"));
                }
                let output = tokens[tokens.len() - 1];
                let fanins: Vec<&str> = tokens[1..tokens.len() - 1].to_vec();
                if fanins.len() > limits.max_fanin {
                    return Err(NetlistError::LimitExceeded {
                        line,
                        what: "fanin count",
                        value: fanins.len(),
                        limit: limits.max_fanin,
                    });
                }
                bump_gates(&mut gates, line, limits)?;
                // Collect the cover rows that follow; the first
                // directive line read too far is pushed back.
                let mut rows: Vec<(String, char)> = Vec::new();
                while let Some((row_line, row_content)) = lines.next_logical()? {
                    let row = row_content.trim();
                    if row.is_empty() {
                        continue;
                    }
                    if row.starts_with('.') {
                        lines.push_back((row_line, row_content));
                        break;
                    }
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (pattern, value) = if fanins.is_empty() {
                        if parts.len() != 1 {
                            return Err(parse_err(row_line, "constant cover must be one token"));
                        }
                        (String::new(), parts[0])
                    } else {
                        if parts.len() != 2 {
                            return Err(parse_err(row_line, "cover row must be `pattern value`"));
                        }
                        (parts[0].to_string(), parts[1])
                    };
                    let value = value
                        .chars()
                        .next()
                        .filter(|c| *c == '0' || *c == '1')
                        .ok_or_else(|| parse_err(row_line, "cover value must be 0 or 1"))?;
                    if !fanins.is_empty() && pattern.len() != fanins.len() {
                        return Err(parse_err(row_line, "pattern width must match fanin count"));
                    }
                    rows.push((pattern, value));
                }
                let kind = classify_cover(&fanins, &rows)
                    .ok_or_else(|| parse_err(line, "cover does not match a library gate"))?;
                match kind {
                    CoverKind::Const(v) => {
                        b.constant(output, v)
                            .map_err(|e| parse_err(line, &e.to_string()))?;
                    }
                    CoverKind::Gate(kind) => {
                        b.gate(output, kind, &fanins)
                            .map_err(|e| parse_err(line, &e.to_string()))?;
                    }
                }
            }
            ".end" => break,
            ".exdc" | ".clock" => {
                // Ignored directives that take no following block we care
                // about at the structural level.
            }
            other => {
                return Err(parse_err(line, &format!("unsupported directive `{other}`")));
            }
        }
    }

    let mut b = builder.ok_or(NetlistError::EmptyCircuit)?;
    for out in &outputs {
        b.output(out)?;
    }
    b.build()
}

enum CoverKind {
    Const(bool),
    Gate(GateKind),
}

/// Matches a sum-of-products cover against the gate library.
fn classify_cover(fanins: &[&str], rows: &[(String, char)]) -> Option<CoverKind> {
    let n = fanins.len();
    if n == 0 {
        // Constant: "1" row means const1, empty or "0" means const0.
        let is_one = rows.iter().any(|(_, v)| *v == '1');
        return Some(CoverKind::Const(is_one));
    }
    if rows.is_empty() {
        return Some(CoverKind::Const(false));
    }
    let all_ones_out = rows.iter().all(|(_, v)| *v == '1');
    let all_zeros_out = rows.iter().all(|(_, v)| *v == '0');
    if !(all_ones_out || all_zeros_out) {
        return None;
    }
    let on_set = all_ones_out;

    if n == 1 {
        let (p, _) = &rows[0];
        return match (rows.len(), p.as_str(), on_set) {
            (1, "1", true) | (1, "0", false) => Some(CoverKind::Gate(GateKind::Buf)),
            (1, "0", true) | (1, "1", false) => Some(CoverKind::Gate(GateKind::Not)),
            _ => None,
        };
    }

    // AND: single row of all '1' → 1. NAND: same row but output 0 rows
    // describe the off-set of the complemented function, i.e. a single
    // all-'1' row with value 0 means NAND.
    if rows.len() == 1 && rows[0].0.chars().all(|c| c == '1') {
        return Some(CoverKind::Gate(if on_set {
            GateKind::And
        } else {
            GateKind::Nand
        }));
    }
    // OR: n rows, row i has '1' at position i and '-' elsewhere.
    if rows.len() == n && is_one_hot(rows, '1') {
        return Some(CoverKind::Gate(if on_set {
            GateKind::Or
        } else {
            GateKind::Nor
        }));
    }
    // NOR via on-set: single row of all '0' → 1; AND-of-complements is
    // NOR. Dually all-'0' with value 0 is OR... no: f=1 iff all inputs 0
    // is NOR; f=0 iff all inputs 0 (i.e. off-set) means f = OR.
    if rows.len() == 1 && rows[0].0.chars().all(|c| c == '0') {
        return Some(CoverKind::Gate(if on_set {
            GateKind::Nor
        } else {
            GateKind::Or
        }));
    }
    // NAND via one-hot '0' rows: f=1 if any input is 0.
    if rows.len() == n && is_one_hot(rows, '0') {
        return Some(CoverKind::Gate(if on_set {
            GateKind::Nand
        } else {
            GateKind::And
        }));
    }
    // XOR/XNOR: 2^(n-1) fully-specified rows with odd (resp. even)
    // parity. The width guard keeps the shift defined for huge fanins
    // (reachable only with `ParseLimits::unlimited`).
    if n - 1 < usize::BITS as usize
        && rows.len() == (1usize << (n - 1))
        && rows
            .iter()
            .all(|(p, _)| p.chars().all(|c| c == '0' || c == '1'))
    {
        let parities: Vec<bool> = rows
            .iter()
            .map(|(p, _)| p.chars().filter(|&c| c == '1').count() % 2 == 1)
            .collect();
        if parities.iter().all(|&b| b) {
            return Some(CoverKind::Gate(if on_set {
                GateKind::Xor
            } else {
                GateKind::Xnor
            }));
        }
        if parities.iter().all(|&b| !b) {
            return Some(CoverKind::Gate(if on_set {
                GateKind::Xnor
            } else {
                GateKind::Xor
            }));
        }
    }
    None
}

fn is_one_hot(rows: &[(String, char)], hot: char) -> bool {
    let n = rows.len();
    let mut seen = vec![false; n];
    for (p, _) in rows {
        let hots: Vec<usize> = p
            .char_indices()
            .filter(|&(_, c)| c == hot)
            .map(|(i, _)| i)
            .collect();
        let dashes = p.chars().filter(|&c| c == '-').count();
        if hots.len() != 1 || dashes != n - 1 {
            return false;
        }
        if seen[hots[0]] {
            return false;
        }
        seen[hots[0]] = true;
    }
    seen.iter().all(|&s| s)
}

/// Reads and parses a BLIF file, streaming: the file is never
/// materialized in memory.
///
/// # Errors
///
/// Propagates I/O errors and the errors of [`parse`].
pub fn read_file(path: impl AsRef<Path>) -> Result<Circuit, NetlistError> {
    parse_reader(BufReader::new(File::open(path)?), &ParseLimits::default())
}

/// Serializes a circuit to BLIF text.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", circuit.name()));
    let pis: Vec<&str> = circuit
        .inputs()
        .iter()
        .map(|&g| circuit.gate(g).name())
        .collect();
    out.push_str(&format!(".inputs {}\n", pis.join(" ")));
    let pos: Vec<&str> = circuit
        .outputs()
        .iter()
        .map(|&g| circuit.gate(circuit.gate(g).fanins()[0]).name())
        .collect();
    out.push_str(&format!(".outputs {}\n", pos.join(" ")));
    for &r in circuit.registers() {
        let gate = circuit.gate(r);
        let d = circuit.gate(gate.fanins()[0]).name();
        out.push_str(&format!(".latch {} {} 0\n", d, gate.name()));
    }
    for (_, gate) in circuit.iter() {
        let fanin_names: Vec<&str> = gate
            .fanins()
            .iter()
            .map(|&f| circuit.gate(f).name())
            .collect();
        let n = fanin_names.len();
        let header = |out: &mut String| {
            out.push_str(&format!(
                ".names {} {}\n",
                fanin_names.join(" "),
                gate.name()
            ));
        };
        match gate.kind() {
            GateKind::Input | GateKind::Output | GateKind::Dff => {}
            GateKind::Const0 => {
                out.push_str(&format!(".names {}\n0\n", gate.name()));
            }
            GateKind::Const1 => {
                out.push_str(&format!(".names {}\n1\n", gate.name()));
            }
            GateKind::Buf => {
                header(&mut out);
                out.push_str("1 1\n");
            }
            GateKind::Not => {
                header(&mut out);
                out.push_str("0 1\n");
            }
            GateKind::And => {
                header(&mut out);
                out.push_str(&format!("{} 1\n", "1".repeat(n)));
            }
            GateKind::Nand => {
                header(&mut out);
                for i in 0..n {
                    let mut row = vec!['-'; n];
                    row[i] = '0';
                    out.push_str(&format!("{} 1\n", row.iter().collect::<String>()));
                }
            }
            GateKind::Or => {
                header(&mut out);
                for i in 0..n {
                    let mut row = vec!['-'; n];
                    row[i] = '1';
                    out.push_str(&format!("{} 1\n", row.iter().collect::<String>()));
                }
            }
            GateKind::Nor => {
                header(&mut out);
                out.push_str(&format!("{} 1\n", "0".repeat(n)));
            }
            GateKind::Xor | GateKind::Xnor => {
                header(&mut out);
                let want_odd = gate.kind() == GateKind::Xor;
                for bits in 0u32..(1 << n) {
                    let ones = bits.count_ones() as usize;
                    if (ones % 2 == 1) == want_odd {
                        let row: String = (0..n)
                            .map(|i| if bits >> i & 1 == 1 { '1' } else { '0' })
                            .collect();
                        out.push_str(&format!("{row} 1\n"));
                    }
                }
            }
            GateKind::Mux => {
                // sel a b: out = sel ? b : a
                header(&mut out);
                out.push_str("01- 1\n1-1 1\n");
            }
        }
    }
    out.push_str(".end\n");
    out
}

/// Writes a circuit to a BLIF file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_file(circuit: &Circuit, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    fs::write(path, write(circuit))?;
    Ok(())
}

fn parse_err(line: usize, message: &str) -> NetlistError {
    NetlistError::Parse {
        line,
        col: 0,
        message: message.to_string(),
    }
}

fn bump_gates(gates: &mut usize, line: usize, limits: &ParseLimits) -> Result<(), NetlistError> {
    *gates += 1;
    if *gates > limits.max_gates {
        return Err(NetlistError::LimitExceeded {
            line,
            what: "gate count",
            value: *gates,
            limit: limits.max_gates,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
.model tiny
.inputs a b
.outputs y z
.latch x q re clk 0
.names a q x
11 1
.names q b y
0- 1
-0 1
.names a b z
01 1
10 1
.end
";

    #[test]
    fn parses_tiny() {
        let c = parse(TINY).unwrap();
        assert_eq!(c.name(), "tiny");
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 2);
        assert_eq!(c.num_registers(), 1);
        assert_eq!(c.find("x").map(|g| c.gate(g).kind()), Some(GateKind::And));
        // y's cover is one-hot '0' rows => NAND
        assert_eq!(c.find("y").map(|g| c.gate(g).kind()), Some(GateKind::Nand));
        assert_eq!(c.find("z").map(|g| c.gate(g).kind()), Some(GateKind::Xor));
    }

    #[test]
    fn round_trip_all_kinds() {
        use crate::CircuitBuilder;
        let mut b = CircuitBuilder::new("kinds");
        b.input("a");
        b.input("bb");
        b.input("cc");
        b.gate("g_and", GateKind::And, &["a", "bb", "cc"]).unwrap();
        b.gate("g_nand", GateKind::Nand, &["a", "bb"]).unwrap();
        b.gate("g_or", GateKind::Or, &["a", "bb"]).unwrap();
        b.gate("g_nor", GateKind::Nor, &["a", "bb", "cc"]).unwrap();
        b.gate("g_xor", GateKind::Xor, &["a", "bb"]).unwrap();
        b.gate("g_xnor", GateKind::Xnor, &["a", "bb"]).unwrap();
        b.gate("g_not", GateKind::Not, &["g_and"]).unwrap();
        b.gate("g_buf", GateKind::Buf, &["g_or"]).unwrap();
        b.constant("k1", true).unwrap();
        b.constant("k0", false).unwrap();
        b.dff("q", "g_xor").unwrap();
        b.gate(
            "mix",
            GateKind::And,
            &[
                "q", "g_not", "g_buf", "k1", "k0", "g_nand", "g_nor", "g_xnor",
            ],
        )
        .unwrap();
        b.output("mix").unwrap();
        let c1 = b.build().unwrap();
        let text = write(&c1);
        let c2 = parse(&text).unwrap();
        for (_, g1) in c1.iter() {
            if g1.kind() == GateKind::Output {
                continue;
            }
            let g2 = c2.gate(c2.find(g1.name()).expect("gate survives"));
            assert_eq!(g1.kind(), g2.kind(), "kind of {}", g1.name());
        }
    }

    #[test]
    fn continuation_lines_join() {
        let src = ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let c = parse(src).unwrap();
        assert_eq!(c.inputs().len(), 2);
    }

    #[test]
    fn unsupported_cover_rejected() {
        // a AND-OR cover that is not a library gate: f = ab + c̄ (with 3 inputs)
        let src = ".model c\n.inputs a b c\n.outputs y\n.names a b c y\n11- 1\n--0 1\n.end\n";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("library gate"), "{err}");
    }

    #[test]
    fn unsupported_directive_rejected() {
        let err = parse(".model c\n.inputs a\n.outputs a\n.subckt foo a=a\n.end\n").unwrap_err();
        assert!(err.to_string().contains("subckt"), "{err}");
    }

    #[test]
    fn constant_covers() {
        let src = ".model c\n.inputs a\n.outputs y\n.names one\n1\n.names a one y\n11 1\n.end\n";
        let c = parse(src).unwrap();
        assert_eq!(
            c.find("one").map(|g| c.gate(g).kind()),
            Some(GateKind::Const1)
        );
    }

    #[test]
    fn limits_reject_hostile_inputs() {
        let long = format!(".model c\n.inputs {}\n", "a".repeat(100));
        let err =
            parse_with_limits(&long, &ParseLimits::default().with_max_line_len(50)).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "line length",
                    line: 2,
                    ..
                }
            ),
            "{err}"
        );
        let err =
            parse_with_limits(&long, &ParseLimits::default().with_max_name_len(10)).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "name length",
                    ..
                }
            ),
            "{err}"
        );
        let src = ".model c\n.inputs a b c\n.outputs y\n.names a b c y\n111 1\n.end\n";
        let err = parse_with_limits(src, &ParseLimits::default().with_max_fanin(2)).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "fanin count",
                    ..
                }
            ),
            "{err}"
        );
        let err = parse_with_limits(TINY, &ParseLimits::default().with_max_gates(3)).unwrap_err();
        assert!(
            matches!(
                err,
                NetlistError::LimitExceeded {
                    what: "gate count",
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn control_characters_rejected_with_column() {
        let err = parse(".model c\n.inputs a\u{0}b\n").unwrap_err();
        match err {
            NetlistError::Parse { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, 10);
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn off_set_covers_give_complement_gates() {
        // Single all-ones row with output 0: NAND.
        let src = ".model c\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let c = parse(src).unwrap();
        assert_eq!(c.find("y").map(|g| c.gate(g).kind()), Some(GateKind::Nand));
    }
}
