//! `fio` — a fault-injectable filesystem shim and the sealed-file
//! envelope used by everything in the suite that persists state.
//!
//! The paper's whole pipeline quantifies resilience to bit flips, so
//! the suite's own persisted state (the serve daemon's cache, job
//! recovery files and solver checkpoints) must not silently trust a
//! disk. Two layers provide that:
//!
//! * **The shim** ([`write_atomic`], [`read_to_string`], …): every
//!   durable write in the daemon and the checkpoint sink goes through
//!   these functions instead of raw `std::fs`. With no [`FaultPlan`]
//!   installed they are plain passthroughs (one relaxed atomic load of
//!   overhead). With a plan installed — programmatically in tests, or
//!   via the [`FAULT_PLAN_ENV`] environment variable in the style of
//!   the `SABOTAGE_*` seeds — deterministic seeded faults are
//!   injected: `ENOSPC` on the Nth write, torn writes truncated at a
//!   seeded byte, kill-during-rename orphans leaving only `.tmp`
//!   files, bit-flip corruption of stored payloads, and `EIO` on
//!   reads.
//! * **The seal** ([`seal`] / [`unseal`]): a one-line header embedding
//!   the tagged FNV-1a content digest of the payload, written
//!   atomically with it. Readers re-hash and compare, so a torn or
//!   bit-flipped entry is *detected* rather than served — the caller
//!   quarantines it and recomputes.
//!
//! Fault decisions are per-category modulo counters (the Nth write of
//! that category faults); the *position* of a tear or bit flip is
//! seeded by the plan seed, the file name and the payload length, so
//! it is deterministic per entry regardless of scheduling order.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::digest::{content_digest, format_digest, parse_digest, Fnv1a};

/// Environment variable holding a fault-plan spec, parsed by
/// [`FaultPlan::parse`] and installed by [`install_from_env`]. Example:
/// `SABOTAGE_FIO_PLAN="seed=0xC0FFEE,enospc=7,tear=11,flip=5,orphan=13"`.
pub const FAULT_PLAN_ENV: &str = "SABOTAGE_FIO_PLAN";

/// A deterministic, seeded plan of filesystem faults. Each `*_every`
/// knob injects its fault on every Nth operation of that category
/// (independent counters); `None` disables the category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every tear offset and flip position.
    pub seed: u64,
    /// Fail every Nth atomic write with `ENOSPC`, leaving a partial
    /// `.tmp` orphan behind (the destination is untouched).
    pub enospc_every: Option<u64>,
    /// Tear every Nth atomic write: only a seeded prefix of the
    /// payload reaches the destination, but the write *reports
    /// success* (a lost flush after rename).
    pub tear_every: Option<u64>,
    /// Flip one seeded bit of the payload on every Nth atomic write
    /// (silent corruption; the write reports success).
    pub flip_every: Option<u64>,
    /// Simulate a kill between temp-write and rename on every Nth
    /// atomic write: the full `.tmp` file exists, the destination was
    /// never updated, and the write reports success.
    pub orphan_every: Option<u64>,
    /// Fail every Nth read with `EIO`.
    pub eio_read_every: Option<u64>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Parses a spec of comma-separated `key=value` pairs: `seed`
    /// (decimal or `0x` hex), `enospc`, `tear`, `flip`, `orphan`,
    /// `eio-read` (each a positive period).
    ///
    /// # Errors
    ///
    /// A message naming the first malformed pair.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = Self::default();
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("`{pair}` is not a key=value pair"))?;
            let parse_u64 = |v: &str| -> Result<u64, String> {
                let parsed = match v.strip_prefix("0x") {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => v.parse(),
                };
                parsed.map_err(|_| format!("`{v}` is not a number (key `{key}`)"))
            };
            let period = |v: &str| -> Result<Option<u64>, String> {
                let n = parse_u64(v)?;
                if n == 0 {
                    return Err(format!("key `{key}` needs a positive period"));
                }
                Ok(Some(n))
            };
            match key.trim() {
                "seed" => plan.seed = parse_u64(value)?,
                "enospc" => plan.enospc_every = period(value)?,
                "tear" => plan.tear_every = period(value)?,
                "flip" => plan.flip_every = period(value)?,
                "orphan" => plan.orphan_every = period(value)?,
                "eio-read" => plan.eio_read_every = period(value)?,
                other => return Err(format!(
                    "unknown fault key `{other}` (use seed, enospc, tear, flip, orphan, eio-read)"
                )),
            }
        }
        Ok(plan)
    }

    fn any_enabled(&self) -> bool {
        self.enospc_every.is_some()
            || self.tear_every.is_some()
            || self.flip_every.is_some()
            || self.orphan_every.is_some()
            || self.eio_read_every.is_some()
    }
}

/// Counts of operations seen and faults injected since the last
/// [`reset_stats`] (or process start). Snapshot via [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FioStats {
    /// Atomic writes attempted through the shim.
    pub writes: u64,
    /// Reads attempted through the shim.
    pub reads: u64,
    /// `ENOSPC` failures injected.
    pub enospc_injected: u64,
    /// Torn writes injected.
    pub torn_injected: u64,
    /// Bit flips injected.
    pub flips_injected: u64,
    /// Kill-during-rename orphans injected.
    pub orphans_injected: u64,
    /// Read `EIO` failures injected.
    pub eio_injected: u64,
}

impl FioStats {
    /// Total faults injected across every category.
    pub fn total_injected(&self) -> u64 {
        self.enospc_injected
            + self.torn_injected
            + self.flips_injected
            + self.orphans_injected
            + self.eio_injected
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

static WRITES: AtomicU64 = AtomicU64::new(0);
static READS: AtomicU64 = AtomicU64::new(0);
static ENOSPC_INJECTED: AtomicU64 = AtomicU64::new(0);
static TORN_INJECTED: AtomicU64 = AtomicU64::new(0);
static FLIPS_INJECTED: AtomicU64 = AtomicU64::new(0);
static ORPHANS_INJECTED: AtomicU64 = AtomicU64::new(0);
static EIO_INJECTED: AtomicU64 = AtomicU64::new(0);

/// Installs a fault plan process-wide. Replaces any previous plan;
/// counters keep running (call [`reset_stats`] for a clean slate).
pub fn install(plan: FaultPlan) {
    *PLAN.lock().expect("fault plan poisoned") = Some(plan);
    ACTIVE.store(plan.any_enabled(), Ordering::SeqCst);
}

/// Removes any installed fault plan; the shim reverts to a pure
/// passthrough.
pub fn clear() {
    *PLAN.lock().expect("fault plan poisoned") = None;
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Parses [`FAULT_PLAN_ENV`] and installs the plan it describes.
/// Returns the installed plan, or `None` when the variable is unset.
/// A malformed spec is **not** silently ignored: a structured warning
/// naming the rejected value is printed and nothing is installed.
pub fn install_from_env() -> Option<FaultPlan> {
    let value = std::env::var(FAULT_PLAN_ENV).ok()?;
    match FaultPlan::parse(&value) {
        Ok(plan) => {
            install(plan);
            Some(plan)
        }
        Err(reason) => {
            eprintln!(
                "warning: ignoring {FAULT_PLAN_ENV}=\"{value}\": {reason} \
                 (no faults will be injected)"
            );
            None
        }
    }
}

/// A snapshot of the shim's operation and injection counters.
pub fn stats() -> FioStats {
    FioStats {
        writes: WRITES.load(Ordering::Relaxed),
        reads: READS.load(Ordering::Relaxed),
        enospc_injected: ENOSPC_INJECTED.load(Ordering::Relaxed),
        torn_injected: TORN_INJECTED.load(Ordering::Relaxed),
        flips_injected: FLIPS_INJECTED.load(Ordering::Relaxed),
        orphans_injected: ORPHANS_INJECTED.load(Ordering::Relaxed),
        eio_injected: EIO_INJECTED.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter (tests isolate phases with this).
pub fn reset_stats() {
    for counter in [
        &WRITES,
        &READS,
        &ENOSPC_INJECTED,
        &TORN_INJECTED,
        &FLIPS_INJECTED,
        &ORPHANS_INJECTED,
        &EIO_INJECTED,
    ] {
        counter.store(0, Ordering::Relaxed);
    }
}

fn plan() -> Option<FaultPlan> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    *PLAN.lock().expect("fault plan poisoned")
}

/// Whether the Nth operation (0-based `n`) of a category with period
/// `every` faults: ops `every-1`, `2*every-1`, … do.
fn fires(n: u64, every: Option<u64>) -> bool {
    every.is_some_and(|e| (n + 1).is_multiple_of(e))
}

/// A seeded, order-independent position derived from the plan seed,
/// the file name and the payload length.
fn seeded_position(seed: u64, path: &Path, len: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(seed);
    h.write_str(&path.file_name().unwrap_or_default().to_string_lossy());
    h.write_u64(len);
    h.finish()
}

/// The temp-file path used by [`write_atomic`]: the destination name
/// with `.tmp` appended (never an extension *replacement*, so
/// `key.bench.tmp` and `key.meta.tmp` cannot collide). Startup fsck
/// scans for this suffix.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically (temp file in the same
/// directory, then rename), through the fault plan if one is
/// installed.
///
/// # Errors
///
/// Real I/O failures, plus injected `ENOSPC` (which leaves a partial
/// `.tmp` orphan, exactly like a full disk would).
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = tmp_path(path);
    let Some(plan) = plan() else {
        fs::write(&tmp, contents)?;
        return fs::rename(&tmp, path);
    };

    let n = WRITES.fetch_add(1, Ordering::Relaxed);
    if fires(n, plan.enospc_every) {
        ENOSPC_INJECTED.fetch_add(1, Ordering::Relaxed);
        // A real ENOSPC typically lands mid-write: a partial temp file
        // stays behind for fsck to clean up.
        let keep = contents.len() / 2;
        let _ = fs::write(&tmp, &contents.as_bytes()[..keep]);
        return Err(io::Error::new(
            io::ErrorKind::StorageFull,
            format!("injected fault: ENOSPC writing {}", path.display()),
        ));
    }
    if fires(n, plan.orphan_every) {
        ORPHANS_INJECTED.fetch_add(1, Ordering::Relaxed);
        // Kill between temp-write and rename: the next process finds a
        // complete `.tmp` orphan and an unchanged destination. The
        // writer itself never learned of the kill, so report success.
        fs::write(&tmp, contents)?;
        return Ok(());
    }

    let mut bytes = contents.as_bytes().to_vec();
    if fires(n, plan.tear_every) && !bytes.is_empty() {
        TORN_INJECTED.fetch_add(1, Ordering::Relaxed);
        let keep = seeded_position(plan.seed, path, bytes.len() as u64) % bytes.len() as u64;
        bytes.truncate(keep as usize);
    } else if fires(n, plan.flip_every) && !bytes.is_empty() {
        FLIPS_INJECTED.fetch_add(1, Ordering::Relaxed);
        let bit = seeded_position(plan.seed, path, bytes.len() as u64) % (bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, path)
}

/// Reads a file to a string through the fault plan.
///
/// # Errors
///
/// Real I/O failures, plus injected `EIO`.
pub fn read_to_string(path: &Path) -> io::Result<String> {
    if let Some(plan) = plan() {
        let n = READS.fetch_add(1, Ordering::Relaxed);
        if fires(n, plan.eio_read_every) {
            EIO_INJECTED.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other(format!(
                "injected fault: EIO reading {}",
                path.display()
            )));
        }
    }
    fs::read_to_string(path)
}

/// Removes a file (passthrough; counted so chaos tests can assert the
/// shim was actually on the path).
///
/// # Errors
///
/// Propagates `std::fs::remove_file` failures.
pub fn remove_file(path: &Path) -> io::Result<()> {
    fs::remove_file(path)
}

/// Renames a file (passthrough).
///
/// # Errors
///
/// Propagates `std::fs::rename` failures.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    fs::rename(from, to)
}

// ---------------------------------------------------------------------
// The sealed-file envelope
// ---------------------------------------------------------------------

/// The header prefix of a sealed file: `#%seal <tagged-digest>\n`
/// followed by the raw payload. `#` keeps sealed `.bench` payloads
/// readable by tools that treat `#` as a comment leader.
pub const SEAL_PREFIX: &str = "#%seal ";

/// Why [`unseal`] rejected a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// No `#%seal` header: a legacy or foreign file. Callers decide
    /// whether to accept it unverified or quarantine it.
    Missing,
    /// The header exists but its digest is malformed or carries a
    /// foreign version tag.
    Malformed(String),
    /// The payload does not hash to the sealed digest: the file was
    /// torn or corrupted after sealing.
    DigestMismatch {
        /// The digest the seal recorded.
        sealed: String,
        /// The digest the payload actually hashes to.
        actual: String,
    },
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Missing => write!(f, "no {SEAL_PREFIX:?} header"),
            SealError::Malformed(why) => write!(f, "malformed seal header: {why}"),
            SealError::DigestMismatch { sealed, actual } => write!(
                f,
                "payload hashes to {actual}, seal says {sealed} (torn or corrupted)"
            ),
        }
    }
}

/// Wraps a payload in the sealed envelope: one header line carrying
/// the tagged content digest, then the payload verbatim.
pub fn seal(payload: &str) -> String {
    format!(
        "{SEAL_PREFIX}{}\n{payload}",
        format_digest(content_digest(payload.as_bytes()))
    )
}

/// Verifies and strips the sealed envelope, returning the payload.
///
/// # Errors
///
/// [`SealError::Missing`] when there is no header (legacy file),
/// otherwise a description of the verification failure.
pub fn unseal(text: &str) -> Result<&str, SealError> {
    let Some(rest) = text.strip_prefix(SEAL_PREFIX) else {
        return Err(SealError::Missing);
    };
    let Some((digest_text, payload)) = rest.split_once('\n') else {
        return Err(SealError::Malformed("header line is unterminated".into()));
    };
    let sealed = parse_digest(digest_text.trim_end()).map_err(SealError::Malformed)?;
    let actual = content_digest(payload.as_bytes());
    if actual != sealed {
        return Err(SealError::DigestMismatch {
            sealed: format_digest(sealed),
            actual: format_digest(actual),
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Plan-installing tests share this lock: the plan is process
    /// state, and the default parallel test harness must not let one
    /// test's faults leak into another's I/O.
    static PLAN_LOCK: Mutex<()> = Mutex::new(());

    struct PlanGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

    impl<'a> PlanGuard<'a> {
        fn install(plan: FaultPlan) -> Self {
            let guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            reset_stats();
            install(plan);
            Self(guard)
        }
    }

    impl Drop for PlanGuard<'_> {
        fn drop(&mut self) {
            clear();
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fio-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn seal_round_trips_and_detects_corruption() {
        let sealed = seal("INPUT(a)\nOUTPUT(a)\n");
        assert_eq!(unseal(&sealed).unwrap(), "INPUT(a)\nOUTPUT(a)\n");

        // Any single bit flip in the payload is caught.
        let mut bytes = sealed.clone().into_bytes();
        let payload_start = sealed.find('\n').unwrap() + 1;
        for i in payload_start..bytes.len() {
            bytes[i] ^= 0x10;
            let tampered = String::from_utf8(bytes.clone()).unwrap();
            assert!(
                matches!(unseal(&tampered), Err(SealError::DigestMismatch { .. })),
                "flip at byte {i} not detected"
            );
            bytes[i] ^= 0x10;
        }

        // Truncation (a torn write) is caught.
        assert!(matches!(
            unseal(&sealed[..sealed.len() - 3]),
            Err(SealError::DigestMismatch { .. })
        ));
        // Legacy files are distinguishable from corrupt ones.
        assert_eq!(unseal("plain text"), Err(SealError::Missing));
        assert!(matches!(
            unseal("#%seal fnv9-v9:0000000000000000\nx"),
            Err(SealError::Malformed(_))
        ));
    }

    #[test]
    fn empty_payload_seals() {
        assert_eq!(unseal(&seal("")).unwrap(), "");
    }

    #[test]
    fn plan_spec_parses_and_rejects() {
        let plan = FaultPlan::parse("seed=0xBEEF, enospc=7,tear=11,flip=5,orphan=13").unwrap();
        assert_eq!(plan.seed, 0xBEEF);
        assert_eq!(plan.enospc_every, Some(7));
        assert_eq!(plan.tear_every, Some(11));
        assert_eq!(plan.flip_every, Some(5));
        assert_eq!(plan.orphan_every, Some(13));
        assert_eq!(plan.eio_read_every, None);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());

        assert!(FaultPlan::parse("bogus=1").unwrap_err().contains("bogus"));
        assert!(FaultPlan::parse("tear=0").unwrap_err().contains("positive"));
        assert!(FaultPlan::parse("seed").unwrap_err().contains("key=value"));
        assert!(FaultPlan::parse("flip=x").unwrap_err().contains("number"));
    }

    #[test]
    fn passthrough_without_a_plan() {
        let _guard = PLAN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        let dir = tmpdir("passthrough");
        let path = dir.join("entry.bench");
        write_atomic(&path, "hello").unwrap();
        assert_eq!(read_to_string(&path).unwrap(), "hello");
        assert!(!tmp_path(&path).exists(), "no tmp residue");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_fires_on_schedule_and_leaves_partial_tmp() {
        let dir = tmpdir("enospc");
        let path = dir.join("entry.bench");
        let mut plan = FaultPlan::new(1);
        plan.enospc_every = Some(3);
        let _guard = PlanGuard::install(plan);

        write_atomic(&path, "one").unwrap();
        write_atomic(&path, "two").unwrap();
        let err = write_atomic(&path, "three").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(err.to_string().contains("injected fault"));
        // Destination still holds the last good write; a partial tmp
        // orphan remains for fsck.
        assert_eq!(fs::read_to_string(&path).unwrap(), "two");
        assert!(tmp_path(&path).exists());
        assert_eq!(stats().enospc_injected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_leaves_tmp_and_stale_destination() {
        let dir = tmpdir("orphan");
        let path = dir.join("entry.bench");
        let mut plan = FaultPlan::new(2);
        plan.orphan_every = Some(2);
        let _guard = PlanGuard::install(plan);

        write_atomic(&path, "first").unwrap();
        write_atomic(&path, "second").unwrap(); // orphaned
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        assert_eq!(fs::read_to_string(tmp_path(&path)).unwrap(), "second");
        assert_eq!(stats().orphans_injected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_flipped_writes_are_caught_by_the_seal() {
        let dir = tmpdir("tear-flip");
        let payload = seal(&"INPUT(a)\n".repeat(20));

        let mut plan = FaultPlan::new(42);
        plan.tear_every = Some(1);
        {
            let _guard = PlanGuard::install(plan);
            let path = dir.join("torn.bench");
            write_atomic(&path, &payload).unwrap(); // reports success
            let back = fs::read_to_string(&path).unwrap();
            assert!(back.len() < payload.len(), "write must actually tear");
            assert_ne!(unseal(&back).ok(), Some(payload.as_str()));
            assert_eq!(stats().torn_injected, 1);
        }

        let mut plan = FaultPlan::new(43);
        plan.flip_every = Some(1);
        {
            let _guard = PlanGuard::install(plan);
            let path = dir.join("flipped.bench");
            write_atomic(&path, &payload).unwrap();
            let back = fs::read_to_string(&path).unwrap();
            assert_eq!(back.len(), payload.len(), "a flip preserves length");
            assert_ne!(back, payload);
            assert!(unseal(&back).is_err(), "the seal must catch the flip");
            assert_eq!(stats().flips_injected, 1);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_positions_are_deterministic_per_entry() {
        let dir = tmpdir("determinism");
        let payload = "x".repeat(257);
        let mut plan = FaultPlan::new(7);
        plan.tear_every = Some(1);

        let read_back = |tag: &str| {
            let _guard = PlanGuard::install(plan);
            let path = dir.join(format!("{tag}.bench"));
            write_atomic(&path, &payload).unwrap();
            fs::read_to_string(&path).unwrap()
        };
        // Same file name, same payload → identical tear, run to run.
        assert_eq!(read_back("same"), read_back("same"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eio_read_fires_on_schedule() {
        let dir = tmpdir("eio");
        let path = dir.join("entry.bench");
        fs::write(&path, "content").unwrap();
        let mut plan = FaultPlan::new(5);
        plan.eio_read_every = Some(2);
        let _guard = PlanGuard::install(plan);

        assert_eq!(read_to_string(&path).unwrap(), "content");
        let err = read_to_string(&path).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(stats().eio_injected, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn env_spec_installs_and_garbage_is_rejected() {
        // `install_from_env` reads the process environment; exercise
        // the parser paths it delegates to instead of mutating global
        // env state under the parallel test harness.
        assert!(FaultPlan::parse("seed=9,flip=4").is_ok());
        assert!(FaultPlan::parse("flip=never").is_err());
    }
}
