//! Content digests for netlists and cache keys.
//!
//! Everything in the suite that fingerprints an instance — solver
//! checkpoints, the serve daemon's content-addressed result cache —
//! uses the same FNV-1a hasher, and every digest that is printed or
//! stored is **self-describing**: it carries the [`DIGEST_TAG`]
//! version prefix (`fnv1a-v1:`), so a load site can refuse a digest
//! produced by a different (future) scheme instead of silently
//! comparing incompatible hashes.
//!
//! ```
//! use netlist::digest::{format_digest, parse_digest};
//! let text = format_digest(0xdead_beef);
//! assert_eq!(text, "fnv1a-v1:00000000deadbeef");
//! assert_eq!(parse_digest(&text).unwrap(), 0xdead_beef);
//! assert!(parse_digest("fnv1a-v2:00000000deadbeef").is_err());
//! ```

use crate::bench_format;
use crate::Circuit;

/// The version tag prefixed to every printed or stored digest. Bump it
/// when the hash function or the hashed canonical form changes; load
/// sites reject mismatched tags.
pub const DIGEST_TAG: &str = "fnv1a-v1";

/// Formats a digest in the self-describing form
/// `fnv1a-v1:<16 hex digits>`.
pub fn format_digest(digest: u64) -> String {
    format!("{DIGEST_TAG}:{digest:016x}")
}

/// Parses a self-describing digest, rejecting a missing or mismatched
/// version tag with a message naming both tags.
///
/// # Errors
///
/// A description of the first problem found (missing tag, wrong tag,
/// or malformed hex), suitable for wrapping in a caller's error type.
pub fn parse_digest(text: &str) -> Result<u64, String> {
    let Some((tag, hex)) = text.split_once(':') else {
        return Err(format!(
            "digest `{text}` is missing the `{DIGEST_TAG}:` version tag"
        ));
    };
    if tag != DIGEST_TAG {
        return Err(format!(
            "digest version tag `{tag}` does not match this build's `{DIGEST_TAG}`; \
             it was produced by an incompatible digest scheme"
        ));
    }
    u64::from_str_radix(hex, 16).map_err(|_| format!("digest `{text}` has malformed hex `{hex}`"))
}

/// The suite's shared FNV-1a (64-bit) hasher. Deliberately simple and
/// dependency-free; it fingerprints content for cache keys and
/// checkpoint validation, not for security.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feeds one `u64` (little-endian byte order).
    pub fn write_u64(&mut self, x: u64) {
        self.write_bytes(&x.to_le_bytes());
    }

    /// Feeds one `i64` (two's-complement, little-endian).
    pub fn write_i64(&mut self, x: i64) {
        self.write_u64(x as u64);
    }

    /// Feeds a string, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The content digest of a circuit: FNV-1a over its canonical `.bench`
/// serialization. Two circuits digest equal exactly when
/// [`bench_format::write`] emits the same text — the same gates, kinds,
/// fanins, I/O and registers in the same canonical order — regardless
/// of which source format or file they were parsed from.
pub fn circuit_digest(circuit: &Circuit) -> u64 {
    content_digest(bench_format::write(circuit).as_bytes())
}

/// The content digest of raw bytes (e.g. an unparsed netlist file).
pub fn content_digest(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn format_and_parse_round_trip() {
        for digest in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_digest(&format_digest(digest)).unwrap(), digest);
        }
    }

    #[test]
    fn parse_rejects_missing_and_mismatched_tags() {
        assert!(parse_digest("0123456789abcdef")
            .unwrap_err()
            .contains("missing"));
        assert!(parse_digest("fnv1a-v2:0123456789abcdef")
            .unwrap_err()
            .contains("fnv1a-v1"));
        assert!(parse_digest("fnv1a-v1:not-hex")
            .unwrap_err()
            .contains("malformed"));
    }

    #[test]
    fn circuit_digest_is_content_addressed() {
        let a = samples::s27_like();
        let mut b = samples::s27_like();
        assert_eq!(circuit_digest(&a), circuit_digest(&b));
        // Renaming the circuit does not change its gates, and the
        // canonical .bench form carries the name only in a comment the
        // writer always emits — so assert on the actual behaviour:
        // digests follow the canonical serialization byte-for-byte.
        b.set_name("other");
        assert_eq!(
            circuit_digest(&a) == circuit_digest(&b),
            bench_format::write(&a) == bench_format::write(&b),
        );
        let c = samples::pipeline(5, 2);
        assert_ne!(circuit_digest(&a), circuit_digest(&c));
    }

    #[test]
    fn fnv_is_stable_across_write_granularity() {
        let mut a = Fnv1a::new();
        a.write_bytes(b"hello world");
        let mut b = Fnv1a::new();
        b.write_bytes(b"hello ");
        b.write_bytes(b"world");
        assert_eq!(a.finish(), b.finish());
        // Known FNV-1a test vector.
        assert_eq!(content_digest(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn write_str_is_length_prefixed() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
