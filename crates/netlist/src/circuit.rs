//! The sequential circuit data structure and its builder.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateKind};

/// A gate-level sequential circuit.
///
/// Gates are stored densely and identified by [`GateId`]. Registers
/// ([`GateKind::Dff`]) separate the circuit into combinational frames;
/// every structural cycle must pass through at least one register
/// (enforced by [`CircuitBuilder::build`]).
///
/// # Examples
///
/// ```
/// use netlist::{CircuitBuilder, GateKind};
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut b = CircuitBuilder::new("toy");
/// b.input("a");
/// b.input("b");
/// b.gate("x", GateKind::And, &["a", "b"])?;
/// b.dff("q", "x")?;
/// b.gate("y", GateKind::Or, &["q", "a"])?;
/// b.output("y")?;
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_registers(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    name: String,
    gates: Vec<Gate>,
    fanouts: Vec<Vec<GateId>>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    registers: Vec<GateId>,
    /// Combinational evaluation order: every non-register gate appears
    /// after all of its non-register fanins; register Q values are state.
    topo: Vec<GateId>,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of gates, including I/O markers and registers.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Access a gate by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(id, gate)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::new(i), g))
    }

    /// The gates that read this gate's output.
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.index()]
    }

    /// Primary input gates, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary output marker gates, in declaration order.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// Register (DFF) gates, in declaration order.
    pub fn registers(&self) -> &[GateId] {
        &self.registers
    }

    /// Number of registers (`#FF` in the paper's Table I).
    pub fn num_registers(&self) -> usize {
        self.registers.len()
    }

    /// Number of combinational vertices (`|V|` in the paper: gates that
    /// are not registers, including I/O markers).
    pub fn num_combinational(&self) -> usize {
        self.gates.len() - self.registers.len()
    }

    /// Combinational topological order: all non-register gates, each
    /// after its non-register fanins. Registers are excluded; their Q
    /// outputs act as state sources.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Finds a gate by its signal name (linear scan; intended for tests
    /// and small lookups — build your own map for bulk work).
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.gates
            .iter()
            .position(|g| g.name == name)
            .map(GateId::new)
    }

    /// Number of signal edges between gates (each fanin reference is one
    /// edge). This counts the structural netlist, not the retiming
    /// graph's collapsed edges.
    pub fn num_edges(&self) -> usize {
        self.gates.iter().map(|g| g.fanins.len()).sum()
    }

    /// Replaces the circuit name, returning the old one.
    pub fn set_name(&mut self, name: impl Into<String>) -> String {
        std::mem::replace(&mut self.name, name.into())
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} comb, {} FF), {} PIs, {} POs",
            self.name,
            self.len(),
            self.num_combinational(),
            self.num_registers(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

/// Incrementally constructs a [`Circuit`], resolving signal names and
/// validating structure at [`CircuitBuilder::build`] time.
#[derive(Debug, Clone, Default)]
pub struct CircuitBuilder {
    name: String,
    gates: Vec<PendingGate>,
    by_name: HashMap<String, usize>,
}

#[derive(Debug, Clone)]
struct PendingGate {
    name: String,
    kind: GateKind,
    fanin_names: Vec<String>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            gates: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    fn push(
        &mut self,
        name: &str,
        kind: GateKind,
        fanins: Vec<String>,
    ) -> Result<GateId, NetlistError> {
        // OUTPUT markers get a synthetic name (`name%out`) so the marker
        // doesn't collide with the signal it observes.
        if kind != GateKind::Output && self.by_name.contains_key(name) {
            return Err(NetlistError::DuplicateSignal(name.to_string()));
        }
        let stored_name = if kind == GateKind::Output {
            format!("{name}%out")
        } else {
            name.to_string()
        };
        if self.by_name.contains_key(&stored_name) {
            return Err(NetlistError::DuplicateSignal(stored_name));
        }
        let idx = self.gates.len();
        self.by_name.insert(stored_name.clone(), idx);
        self.gates.push(PendingGate {
            name: stored_name,
            kind,
            fanin_names: fanins,
        });
        Ok(GateId::new(idx))
    }

    /// Declares a primary input signal.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name (inputs are typically declared first;
    /// use [`CircuitBuilder::gate`] if you need a `Result`).
    pub fn input(&mut self, name: &str) -> GateId {
        self.push(name, GateKind::Input, Vec::new())
            .expect("duplicate input name")
    }

    /// Declares that signal `of` is a primary output.
    ///
    /// # Errors
    ///
    /// Returns an error if an output marker for `of` already exists.
    pub fn output(&mut self, of: &str) -> Result<GateId, NetlistError> {
        self.push(of, GateKind::Output, vec![of.to_string()])
    }

    /// Adds a logic gate driving signal `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if `name` is already
    /// driven, or [`NetlistError::InvalidArity`] if the fanin count is
    /// outside `kind`'s range.
    pub fn gate(
        &mut self,
        name: &str,
        kind: GateKind,
        fanins: &[&str],
    ) -> Result<GateId, NetlistError> {
        let (lo, hi) = kind.arity();
        if fanins.len() < lo || fanins.len() > hi {
            return Err(NetlistError::InvalidArity {
                gate: name.to_string(),
                kind: kind.to_string(),
                got: fanins.len(),
            });
        }
        self.push(name, kind, fanins.iter().map(|s| s.to_string()).collect())
    }

    /// Adds a D flip-flop whose Q output drives `name` and whose D input
    /// is signal `d`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if `name` is already
    /// driven.
    pub fn dff(&mut self, name: &str, d: &str) -> Result<GateId, NetlistError> {
        self.push(name, GateKind::Dff, vec![d.to_string()])
    }

    /// Adds a constant driver for signal `name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if `name` is already
    /// driven.
    pub fn constant(&mut self, name: &str, value: bool) -> Result<GateId, NetlistError> {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.push(name, kind, Vec::new())
    }

    /// Number of gates added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether no gate has been added yet.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Resolves names, validates structure and produces the [`Circuit`].
    ///
    /// # Errors
    ///
    /// * [`NetlistError::EmptyCircuit`] if no gates were added.
    /// * [`NetlistError::UnknownSignal`] if a fanin is never driven.
    /// * [`NetlistError::CombinationalCycle`] if a cycle avoids all
    ///   registers.
    pub fn build(self) -> Result<Circuit, NetlistError> {
        if self.gates.is_empty() {
            return Err(NetlistError::EmptyCircuit);
        }
        let mut gates = Vec::with_capacity(self.gates.len());
        for pending in &self.gates {
            let mut fanins = Vec::with_capacity(pending.fanin_names.len());
            for fname in &pending.fanin_names {
                let idx = self
                    .by_name
                    .get(fname.as_str())
                    .ok_or_else(|| NetlistError::UnknownSignal(fname.clone()))?;
                fanins.push(GateId::new(*idx));
            }
            gates.push(Gate {
                name: pending.name.clone(),
                kind: pending.kind,
                fanins,
            });
        }

        let mut fanouts: Vec<Vec<GateId>> = vec![Vec::new(); gates.len()];
        for (i, gate) in gates.iter().enumerate() {
            for &f in &gate.fanins {
                fanouts[f.index()].push(GateId::new(i));
            }
        }

        let inputs: Vec<GateId> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Input)
            .map(|(i, _)| GateId::new(i))
            .collect();
        let outputs: Vec<GateId> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Output)
            .map(|(i, _)| GateId::new(i))
            .collect();
        let registers: Vec<GateId> = gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Dff)
            .map(|(i, _)| GateId::new(i))
            .collect();

        let topo = combinational_topo(&gates, &fanouts)?;

        Ok(Circuit {
            name: self.name,
            gates,
            fanouts,
            inputs,
            outputs,
            registers,
            topo,
        })
    }
}

/// Kahn's algorithm over the combinational subgraph. Register outputs
/// count as sources (their value is state); register D inputs terminate
/// paths. Returns an evaluation order of all non-register gates or a
/// cycle witness.
fn combinational_topo(
    gates: &[Gate],
    fanouts: &[Vec<GateId>],
) -> Result<Vec<GateId>, NetlistError> {
    let n = gates.len();
    let mut indeg = vec![0usize; n];
    for (i, gate) in gates.iter().enumerate() {
        if gate.kind == GateKind::Dff {
            continue; // registers are not evaluated combinationally
        }
        indeg[i] = gate
            .fanins
            .iter()
            .filter(|f| gates[f.index()].kind != GateKind::Dff)
            .count();
    }
    let mut queue: Vec<GateId> = (0..n)
        .filter(|&i| gates[i].kind != GateKind::Dff && indeg[i] == 0)
        .map(GateId::new)
        .collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &f in &fanouts[v.index()] {
            if gates[f.index()].kind == GateKind::Dff {
                continue;
            }
            indeg[f.index()] -= 1;
            if indeg[f.index()] == 0 {
                queue.push(f);
            }
        }
    }
    let expected = gates.iter().filter(|g| g.kind != GateKind::Dff).count();
    if order.len() != expected {
        let witness = (0..n)
            .find(|&i| gates[i].kind != GateKind::Dff && indeg[i] > 0)
            .map(|i| gates[i].name.clone())
            .unwrap_or_default();
        return Err(NetlistError::CombinationalCycle { witness });
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        let mut b = CircuitBuilder::new("toy");
        b.input("a");
        b.input("b");
        b.gate("x", GateKind::And, &["a", "b"]).unwrap();
        b.dff("q", "x").unwrap();
        b.gate("y", GateKind::Or, &["q", "a"]).unwrap();
        b.output("y").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_counts() {
        let c = toy();
        assert_eq!(c.len(), 6);
        assert_eq!(c.num_registers(), 1);
        assert_eq!(c.num_combinational(), 5);
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.outputs().len(), 1);
        assert_eq!(c.num_edges(), 6); // x:2, q:1, y:2, out:1
    }

    #[test]
    fn fanouts_are_consistent_with_fanins() {
        let c = toy();
        for (id, gate) in c.iter() {
            for &f in gate.fanins() {
                assert!(c.fanouts(f).contains(&id), "{f} should list {id} as fanout");
            }
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = toy();
        let pos: HashMap<GateId, usize> = c
            .topo_order()
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i))
            .collect();
        for &id in c.topo_order() {
            for &f in c.gate(id).fanins() {
                if c.gate(f).kind() == GateKind::Dff {
                    continue;
                }
                assert!(pos[&f] < pos[&id], "{f} must precede {id}");
            }
        }
        assert_eq!(c.topo_order().len(), c.num_combinational());
    }

    #[test]
    fn register_feedback_is_legal() {
        // q feeds logic that feeds q again: a loop broken by the DFF.
        let mut b = CircuitBuilder::new("loop");
        b.input("a");
        b.gate("x", GateKind::Xor, &["a", "q"]).unwrap();
        b.dff("q", "x").unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.num_registers(), 1);
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.input("a");
        b.gate("u", GateKind::And, &["a", "v"]).unwrap();
        b.gate("v", GateKind::Or, &["u", "a"]).unwrap();
        b.output("v").unwrap();
        match b.build() {
            Err(NetlistError::CombinationalCycle { witness }) => {
                assert!(witness == "u" || witness == "v");
            }
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_signal_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.input("a");
        b.gate("x", GateKind::Not, &["ghost"]).unwrap();
        assert!(matches!(b.build(), Err(NetlistError::UnknownSignal(s)) if s == "ghost"));
    }

    #[test]
    fn duplicate_signal_is_rejected() {
        let mut b = CircuitBuilder::new("bad");
        b.input("a");
        assert!(matches!(
            b.gate("a", GateKind::Not, &["a"]),
            Err(NetlistError::DuplicateSignal(_))
        ));
    }

    #[test]
    fn empty_circuit_is_rejected() {
        assert!(matches!(
            CircuitBuilder::new("nil").build(),
            Err(NetlistError::EmptyCircuit)
        ));
    }

    #[test]
    fn output_marker_gets_distinct_name() {
        let c = toy();
        let out = c.outputs()[0];
        assert_eq!(c.gate(out).name(), "y%out");
        assert_eq!(c.gate(out).kind(), GateKind::Output);
        // The marker observes y.
        let y = c.find("y").unwrap();
        assert_eq!(c.gate(out).fanins(), &[y]);
    }

    #[test]
    fn find_by_name() {
        let c = toy();
        assert!(c.find("q").is_some());
        assert!(c.find("nope").is_none());
    }

    #[test]
    fn invalid_arity_reported() {
        let mut b = CircuitBuilder::new("bad");
        b.input("a");
        let err = b.gate("x", GateKind::Mux, &["a", "a"]).unwrap_err();
        assert!(matches!(err, NetlistError::InvalidArity { got: 2, .. }));
    }

    #[test]
    fn display_summary() {
        let c = toy();
        let s = c.to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("1 FF"));
    }

    #[test]
    fn constants_build() {
        let mut b = CircuitBuilder::new("c");
        b.constant("one", true).unwrap();
        b.gate("x", GateKind::Not, &["one"]).unwrap();
        b.output("x").unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.gate(c.find("one").unwrap()).kind(), GateKind::Const1);
    }
}
