//! Shared worker-count resolution for every threaded stage in the
//! suite.
//!
//! `faultsim` campaigns, the SER engine's levelized passes and the
//! `table1` per-circuit pool all spawn `std::thread::scope` workers.
//! They must agree on how a thread count is chosen, so the rule lives
//! here once:
//!
//! 1. an explicit request (`--threads N` flag, `SimConfig::threads`,
//!    `CampaignConfig::workers`) wins when non-zero,
//! 2. otherwise the [`THREADS_ENV`] (`SER_THREADS`) environment
//!    variable, when set to a positive integer,
//! 3. otherwise [`std::thread::available_parallelism`].
//!
//! The resolved count is then clamped to the number of independent
//! work items by [`clamp_workers`] — spawning more threads than there
//! is work only adds scheduling noise.

/// Environment variable consulted when no explicit thread count is
/// requested (`SER_THREADS=4 retimer ...`).
pub const THREADS_ENV: &str = "SER_THREADS";

/// Classifies a thread-count spec (the [`THREADS_ENV`] value or a
/// `--threads` argument): `Ok(n)` for a positive integer, `Err` with a
/// human-readable reason for `0`, garbage, or an unparseable number.
/// Exposed so every front-end rejects (or warns about) bad specs with
/// the same wording.
///
/// # Errors
///
/// A description of why the spec is not a positive worker count.
pub fn parse_thread_spec(spec: &str) -> Result<usize, String> {
    match spec.trim().parse::<usize>() {
        Ok(0) => Err("0 is not a positive worker count".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("`{}` is not a positive integer", spec.trim())),
    }
}

/// Resolves a worker count: explicit `requested` (non-zero) beats the
/// [`THREADS_ENV`] environment variable, which beats
/// [`std::thread::available_parallelism`]. Always returns ≥ 1.
///
/// A set-but-invalid [`THREADS_ENV`] (zero, garbage, out of range) is
/// **not** silently ignored: a structured warning naming the rejected
/// value and the worker count actually resolved is printed to stderr,
/// once per process.
///
/// # Examples
///
/// ```
/// use netlist::parallel::resolve_workers;
/// assert_eq!(resolve_workers(3), 3); // explicit request wins
/// assert!(resolve_workers(0) >= 1); // env var or hardware fallback
/// ```
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let hardware = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var(THREADS_ENV) {
        Ok(v) => match parse_thread_spec(&v) {
            Ok(n) => n,
            Err(reason) => {
                let resolved = hardware();
                warn_bad_env_once(&v, &reason, resolved);
                resolved
            }
        },
        Err(_) => hardware(),
    }
}

/// Prints the bad-[`THREADS_ENV`] warning once per process. Every
/// threaded stage calls [`resolve_workers`]; repeating the warning per
/// stage would drown the diagnostic it carries.
fn warn_bad_env_once(value: &str, reason: &str, resolved: usize) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: ignoring {THREADS_ENV}=\"{value}\": {reason} \
             [resolved_workers={resolved} source=hardware]"
        );
    });
}

/// Clamps a resolved worker count to the number of independent work
/// items. Always returns ≥ 1, even for zero items.
///
/// # Examples
///
/// ```
/// use netlist::parallel::clamp_workers;
/// assert_eq!(clamp_workers(8, 3), 3);
/// assert_eq!(clamp_workers(2, 100), 2);
/// assert_eq!(clamp_workers(4, 0), 1);
/// ```
pub fn clamp_workers(workers: usize, work_items: usize) -> usize {
    workers.max(1).min(work_items.max(1))
}

/// [`resolve_workers`] followed by [`clamp_workers`] — the common case.
pub fn resolve_workers_for(requested: usize, work_items: usize) -> usize {
    clamp_workers(resolve_workers(requested), work_items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_workers(7), 7);
        assert_eq!(resolve_workers(1), 1);
    }

    #[test]
    fn zero_request_falls_back_to_at_least_one() {
        // The env var may or may not be set in the test environment;
        // either way the result must be positive.
        assert!(resolve_workers(0) >= 1);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp_workers(0, 10), 1);
        assert_eq!(clamp_workers(16, 4), 4);
        assert_eq!(clamp_workers(3, 3), 3);
        assert_eq!(clamp_workers(5, 0), 1);
    }

    #[test]
    fn resolve_for_combines() {
        assert_eq!(resolve_workers_for(8, 2), 2);
        assert_eq!(resolve_workers_for(2, 8), 2);
    }

    #[test]
    fn thread_spec_classification() {
        assert_eq!(parse_thread_spec("4"), Ok(4));
        assert_eq!(parse_thread_spec(" 2 "), Ok(2));
        assert!(parse_thread_spec("0").unwrap_err().contains("0"));
        assert!(parse_thread_spec("abc").unwrap_err().contains("abc"));
        assert!(parse_thread_spec("-3").unwrap_err().contains("-3"));
        assert!(parse_thread_spec("").is_err());
    }
}
