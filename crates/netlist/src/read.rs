//! One front door for reading netlists: extension sniffing plus the
//! streaming parsers.
//!
//! Every consumer that used to dispatch on file extensions by hand
//! (the `retimer` CLI, the serve daemon, tests) goes through
//! [`read_path`] instead: it sniffs the format from the extension,
//! opens the file behind a [`BufReader`], and runs the matching
//! streaming parser under the caller's [`ParseLimits`] — the file is
//! never materialized in memory (see [`crate::stream`]).

use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::limits::ParseLimits;
use crate::{bench_format, blif, verilog};

/// A supported netlist file format, sniffed from a file extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetlistFormat {
    /// Structural BLIF (`.blif`).
    Blif,
    /// ISCAS89 `.bench`.
    Bench,
    /// Structural gate-level Verilog (`.v`, `.verilog`).
    Verilog,
}

impl NetlistFormat {
    /// The canonical format name (`"bench"` / `"blif"` / `"verilog"`),
    /// used by protocols and reports.
    pub fn name(self) -> &'static str {
        match self {
            NetlistFormat::Blif => "blif",
            NetlistFormat::Bench => "bench",
            NetlistFormat::Verilog => "verilog",
        }
    }

    /// Parses a canonical name or file extension (`"bench"`, `"blif"`,
    /// `"v"`, `"verilog"`). `None` for anything else.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "blif" => Some(NetlistFormat::Blif),
            "bench" => Some(NetlistFormat::Bench),
            "v" | "verilog" => Some(NetlistFormat::Verilog),
            _ => None,
        }
    }

    /// Sniffs the format from a path's extension (case-insensitive):
    /// `.blif`, `.bench`, `.v`/`.verilog`. `None` for anything else.
    pub fn from_path(path: &Path) -> Option<Self> {
        let ext = path.extension()?.to_str()?.to_ascii_lowercase();
        Self::from_name(&ext)
    }

    /// Parses in-memory text as this format under `limits`. `name` is
    /// used by formats that do not carry a circuit name themselves
    /// (`.bench`); the others ignore it.
    ///
    /// # Errors
    ///
    /// The parse and limit errors of the format's parser.
    pub fn parse_str(
        self,
        text: &str,
        name: &str,
        limits: &ParseLimits,
    ) -> Result<Circuit, NetlistError> {
        match self {
            NetlistFormat::Blif => blif::parse_with_limits(text, limits),
            NetlistFormat::Bench => bench_format::parse_with_limits(text, name, limits),
            NetlistFormat::Verilog => verilog::parse_with_limits(text, limits),
        }
    }
}

impl std::fmt::Display for NetlistFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reads a netlist file of any supported format, streaming, under
/// explicit [`ParseLimits`].
///
/// The format is sniffed from the extension; for `.bench` (which is
/// anonymous) the file stem becomes the circuit name. Input is read
/// through the fused streaming scanner, so peak transient memory is
/// bounded by `limits.max_line_len`, not the file size.
///
/// # Errors
///
/// * [`NetlistError::Parse`] (line 0) for an unrecognized extension,
/// * [`NetlistError::Io`] for open/read failures and invalid UTF-8,
/// * the parse, limit and structural errors of the format's parser.
///
/// # Examples
///
/// ```no_run
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let limits = netlist::ParseLimits::default();
/// let circuit = netlist::read_path("designs/s27.bench", &limits)?;
/// println!("{} gates", circuit.len());
/// # Ok(())
/// # }
/// ```
pub fn read_path(path: impl AsRef<Path>, limits: &ParseLimits) -> Result<Circuit, NetlistError> {
    let path = path.as_ref();
    let format = NetlistFormat::from_path(path).ok_or_else(|| NetlistError::Parse {
        line: 0,
        col: 0,
        message: "unknown input format (use .bench, .blif or .v)".into(),
    })?;
    let reader = BufReader::new(File::open(path)?);
    match format {
        NetlistFormat::Blif => blif::parse_reader(reader, limits),
        NetlistFormat::Bench => {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("circuit");
            bench_format::parse_reader(reader, name, limits)
        }
        NetlistFormat::Verilog => verilog::parse_reader(reader, limits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    #[test]
    fn sniffs_known_extensions_case_insensitively() {
        assert_eq!(
            NetlistFormat::from_path(Path::new("a/b/c.blif")),
            Some(NetlistFormat::Blif)
        );
        assert_eq!(
            NetlistFormat::from_path(Path::new("x.BENCH")),
            Some(NetlistFormat::Bench)
        );
        assert_eq!(
            NetlistFormat::from_path(Path::new("x.v")),
            Some(NetlistFormat::Verilog)
        );
        assert_eq!(
            NetlistFormat::from_path(Path::new("x.Verilog")),
            Some(NetlistFormat::Verilog)
        );
        assert_eq!(NetlistFormat::from_path(Path::new("x.json")), None);
        assert_eq!(NetlistFormat::from_path(Path::new("noext")), None);
    }

    #[test]
    fn read_path_round_trips_every_format() {
        let c = samples::s27_like();
        let dir = std::env::temp_dir();
        let limits = ParseLimits::default();

        let p = dir.join("minobswin_read_path.bench");
        bench_format::write_file(&c, &p).unwrap();
        let got = read_path(&p, &limits).unwrap();
        assert_eq!(got.name(), "minobswin_read_path");
        assert_eq!(got.num_registers(), c.num_registers());
        std::fs::remove_file(&p).ok();

        let p = dir.join("minobswin_read_path.blif");
        blif::write_file(&c, &p).unwrap();
        let got = read_path(&p, &limits).unwrap();
        assert_eq!(got.num_registers(), c.num_registers());
        std::fs::remove_file(&p).ok();

        let p = dir.join("minobswin_read_path.v");
        verilog::write_file(&c, &p).unwrap();
        let got = read_path(&p, &limits).unwrap();
        assert_eq!(got.num_registers(), c.num_registers());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn unknown_extension_is_a_parse_error() {
        let err = read_path("nope.txt", &ParseLimits::default()).unwrap_err();
        assert!(matches!(err, NetlistError::Parse { line: 0, .. }), "{err}");
    }

    #[test]
    fn missing_file_is_io() {
        let err = read_path("definitely/missing.bench", &ParseLimits::default()).unwrap_err();
        assert!(matches!(err, NetlistError::Io(_)), "{err}");
    }

    #[test]
    fn parse_str_dispatches_by_format() {
        let c = samples::s27_like();
        let limits = ParseLimits::default();
        let bench = bench_format::write(&c);
        let got = NetlistFormat::Bench
            .parse_str(&bench, "s27", &limits)
            .unwrap();
        assert_eq!(got.name(), "s27");
        let blif_text = blif::write(&c);
        let got = NetlistFormat::Blif
            .parse_str(&blif_text, "ignored", &limits)
            .unwrap();
        assert_eq!(got.num_registers(), c.num_registers());
        let v = verilog::write(&c);
        let got = NetlistFormat::Verilog
            .parse_str(&v, "ignored", &limits)
            .unwrap();
        assert_eq!(got.num_registers(), c.num_registers());
    }
}
