//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction pipeline (circuit generation, simulation
//! signatures) must be bit-reproducible across platforms and compiler
//! versions, so we implement a small, well-known PRNG instead of relying
//! on an external crate whose stream may change between releases.
//!
//! [`SplitMix64`] is used to seed [`Xoshiro256`] (xoshiro256\*\*), the
//! same construction recommended by the xoshiro authors.

/// SplitMix64 generator, mainly used to expand a 64-bit seed into the
/// 256-bit state of [`Xoshiro256`].
///
/// # Examples
///
/// ```
/// use netlist::rng::SplitMix64;
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256\*\* generator: fast, high-quality, 256-bit state.
///
/// This is the workhorse generator for circuit synthesis and signature
/// simulation. Identical seeds produce identical streams forever.
///
/// # Examples
///
/// ```
/// use netlist::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from_u64(7);
/// let die = rng.gen_range(6) + 1;
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with [`SplitMix64`].
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is the one fixed point of the generator.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_range bound must be positive");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low < bound {
                let threshold = bound.wrapping_neg() % bound;
                if low < threshold {
                    continue;
                }
            }
            return (m >> 64) as usize;
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_range(slice.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference values for seed 1234567 from the public SplitMix64
        // reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(v[0], 6457827717110365317);
        assert_eq!(v[1], 3203168211198807973);
        assert_eq!(v[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(99);
        let mut b = Xoshiro256::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_differs_by_seed() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = rng.gen_range(7);
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle should move elements"
        );
    }

    #[test]
    fn gen_bool_probability_sanity() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_panics() {
        Xoshiro256::seed_from_u64(0).gen_range(0);
    }
}
