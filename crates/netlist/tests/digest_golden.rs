//! Golden tests pinning the digest scheme.
//!
//! The serve cache, checkpoint files and every printed digest use
//! `fnv1a-v1:` tagged FNV-1a digests. These tests fail loudly if the
//! hash function, the tag, or the canonical `.bench` serialization
//! drifts — any of which would silently orphan every existing cache
//! entry and checkpoint in the field.

use netlist::bench_format;
use netlist::digest::{circuit_digest, content_digest, format_digest, parse_digest};

const FIXTURE: &str = include_str!("fixtures/golden.bench");

/// Raw-content digest of the committed fixture bytes. If this changes,
/// the hash function changed.
#[test]
fn fixture_content_digest_is_pinned() {
    assert_eq!(
        format_digest(content_digest(FIXTURE.as_bytes())),
        "fnv1a-v1:b7d49f4f649dff04",
        "FNV-1a over the fixture bytes drifted: cache keys and \
         checkpoint digests in the field no longer match"
    );
}

/// Digest of the parsed-and-reserialized fixture. If this changes (and
/// the previous test does not), the canonical `.bench` writer drifted.
#[test]
fn fixture_circuit_digest_is_pinned() {
    let circuit = bench_format::parse(FIXTURE, "golden").expect("fixture parses");
    assert_eq!(
        format_digest(circuit_digest(&circuit)),
        "fnv1a-v1:0660eb6b004cd44e",
        "canonical .bench serialization drifted: content-addressed \
         cache entries no longer match their circuits"
    );
}

/// The empty input hashes to the FNV-1a offset basis — the scheme's
/// most basic anchor.
#[test]
fn empty_content_is_offset_basis() {
    assert_eq!(content_digest(b""), 0xcbf2_9ce4_8422_2325);
}

/// Tagged digests round-trip, and untagged or foreign-tagged strings
/// are rejected with errors naming the problem.
#[test]
fn tag_round_trip_and_rejection() {
    let tagged = format_digest(0x1234_5678_9abc_def0);
    assert_eq!(tagged, "fnv1a-v1:123456789abcdef0");
    assert_eq!(parse_digest(&tagged).unwrap(), 0x1234_5678_9abc_def0);

    let untagged = parse_digest("123456789abcdef0").unwrap_err();
    assert!(untagged.contains("missing"), "got: {untagged}");
    let foreign = parse_digest("sha256-v9:123456789abcdef0").unwrap_err();
    assert!(
        foreign.contains("sha256-v9") && foreign.contains("fnv1a-v1"),
        "error must name both tags: {foreign}"
    );
    assert!(parse_digest("fnv1a-v1:xyz").is_err());
}
