//! Confidence intervals for Monte-Carlo latch counts.

/// The Wilson score interval for a binomial proportion.
///
/// Returns `(lo, hi)` bounds on the true success probability given
/// `successes` out of `trials` at critical value `z` (1.96 ≈ 95%).
/// For `trials == 0` the interval is the vacuous `(0, 1)`.
///
/// The Wilson interval (unlike the naive normal approximation) stays
/// inside `[0, 1]` and behaves sanely at `p → 0` — the regime of
/// per-gate latch probabilities, which are small by construction.
///
/// # Examples
///
/// ```
/// use faultsim::wilson_interval;
/// let (lo, hi) = wilson_interval(50, 100, 1.96);
/// assert!(lo < 0.5 && 0.5 < hi);
/// assert!(hi - lo < 0.2);
/// let (lo0, _) = wilson_interval(0, 100, 1.96);
/// assert_eq!(lo0, 0.0);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    assert!(successes <= trials, "more successes than trials");
    assert!(z > 0.0, "z must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let spread = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    let lo = ((center - spread) / denom).max(0.0);
    let hi = ((center + spread) / denom).min(1.0);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_the_point_estimate() {
        for &(s, n) in &[(1u64, 10u64), (5, 10), (9, 10), (0, 10), (10, 10)] {
            let (lo, hi) = wilson_interval(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "{s}/{n}: [{lo}, {hi}]");
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn shrinks_with_more_trials() {
        let (lo1, hi1) = wilson_interval(50, 100, 1.96);
        let (lo2, hi2) = wilson_interval(5_000, 10_000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn widens_with_larger_z() {
        let (lo95, hi95) = wilson_interval(30, 200, 1.96);
        let (lo99, hi99) = wilson_interval(30, 200, 2.576);
        assert!(lo99 < lo95 && hi95 < hi99);
    }

    #[test]
    fn zero_trials_is_vacuous() {
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn known_value() {
        // 10/100 at z = 1.96: textbook Wilson bounds ≈ (0.0552, 0.1744).
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        assert!((lo - 0.0552).abs() < 5e-4, "lo {lo}");
        assert!((hi - 0.1744).abs() < 5e-4, "hi {hi}");
    }

    #[test]
    #[should_panic(expected = "more successes")]
    fn rejects_impossible_counts() {
        wilson_interval(11, 10, 1.96);
    }
}
