//! # faultsim — Monte-Carlo SEU fault injection for the minobswin suite
//!
//! A parallel single-event-transient injection engine that
//! cross-validates the analytic SER model of [`ser_engine`] (the
//! paper's eq. (4)) by *counting* instead of *multiplying*: strikes are
//! sampled over (site, vector, arrival time, pulse width), propagated
//! exactly through the time-frame-expanded circuit, and latched only
//! when the transient overlaps the struck node's error-latching window.
//!
//! The engine is organized as three layers:
//!
//! * [`FaultAtlas`] — campaign precompute: one bit-parallel faulty
//!   resimulation per distinct injection node (all `K` vectors at
//!   once), plus the node's exact ELW. Makes the per-injection cost two
//!   table lookups and an interval test.
//! * [`run_campaign`] — the sampling loop, fanned out over
//!   `std::thread::scope` workers with per-worker PRNG streams split
//!   from the campaign seed. Bit-for-bit deterministic for a fixed
//!   `(seed, workers)` pair.
//! * [`CrossCheck`] — per-site and total comparison against a
//!   [`ser_engine::SerReport`], with Wilson confidence intervals and a
//!   documented tolerance for the ODC reconvergence approximation.
//!
//! On top of those sit the estimator-facing layers:
//!
//! * [`MonteCarloEstimator`] — the campaign behind the suite's one
//!   [`ser_engine::SerEstimator`] front door,
//! * [`check_agreement`] — the three-way (analytic / propprob /
//!   Monte-Carlo, plus the exhaustive oracle when feasible) agreement
//!   oracle with per-pair-class tolerance bands,
//! * [`advise`] — the selective-hardening advisor, cross-scoring each
//!   strike site's SER contribution by two independent engines and
//!   greedily spending an area budget on the best payoff.
//!
//! No external dependencies: the PRNG is [`netlist::rng`] (the same
//! deterministic xoshiro256\*\* the rest of the suite uses).
//!
//! # Examples
//!
//! ```
//! use faultsim::{run_campaign, CampaignConfig, CrossCheck};
//! use netlist::samples;
//! use ser_engine::{analyze, SerConfig};
//! # fn main() -> Result<(), retime::RetimeError> {
//! let circuit = samples::s27_like();
//! let ser = SerConfig::small(30);
//!
//! let analytic = analyze(&circuit, &ser)?;
//! let campaign = run_campaign(&circuit, &ser, &CampaignConfig::new(5_000))?;
//! let check = CrossCheck::compare(&circuit, &analytic, &campaign, 0.05);
//!
//! let (lo, hi) = campaign.ser_ci();
//! assert!(lo <= campaign.ser() && campaign.ser() <= hi);
//! println!("{}", check.summary());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod agreement;
mod atlas;
mod campaign;
mod crosscheck;
mod estimator;
mod harden;
mod stats;

pub use agreement::{
    check_agreement, AgreementReport, PairVerdict, SiteDivergence, ToleranceBands,
};
pub use atlas::{FaultAtlas, Site};
pub use campaign::{
    folded_elw_fraction, run_campaign, run_campaign_on, CampaignConfig, CampaignResult, SiteStats,
};
pub use crosscheck::{CrossCheck, SiteComparison, DEFAULT_TOLERANCE};
pub use estimator::MonteCarloEstimator;
pub use harden::{advise, cell_area, plan_from_scores, HardenCandidate, HardenConfig, HardenPlan};
pub use stats::wilson_interval;
