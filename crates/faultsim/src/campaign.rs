//! The Monte-Carlo injection campaign itself.
//!
//! Each injection draws a `(site, vector, arrival, width)` tuple:
//!
//! * **site** — a gate or register, with probability ∝ `err(g)`
//!   (importance sampling over the rate model, so the empirical SER is
//!   `total_rate × latches/trials`),
//! * **vector** — one of the `K` simulated input vectors, uniform,
//! * **arrival** — a real strike time `t ∈ [0, Φ)`, uniform,
//! * **width** — the transient pulse width (fixed per campaign).
//!
//! A strike *latches* iff the flip propagates to an observation point
//! under that vector (table lookup in the [`FaultAtlas`]) **and** the
//! pulse `[t, t+w]`, folded modulo the clock period, overlaps the
//! node's error-latching window. This is exactly the logic × timing
//! masking decomposition of the paper's eq. (4), evaluated per sample
//! instead of in expectation.
//!
//! Workers each own a PRNG stream split off the campaign seed with
//! [`SplitMix64`], and partial tallies merge by summation in worker
//! order, so a campaign is bit-for-bit deterministic for a fixed
//! `(seed, workers)` pair regardless of thread scheduling.

use netlist::rng::{SplitMix64, Xoshiro256};
use netlist::{Circuit, GateId};
use ser_engine::{IntervalSet, SerConfig};

use crate::atlas::FaultAtlas;
use crate::stats::wilson_interval;

/// Parameters of one Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Total number of injections to draw.
    pub injections: u64,
    /// Campaign seed; same seed + same worker count ⇒ identical result.
    pub seed: u64,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// Transient pulse width, in the same time units as the delay model
    /// and Φ. `0.0` models an instantaneous flip, which is what the
    /// analytic `|ELW|/Φ` factor assumes.
    pub pulse_width: f64,
    /// Critical value for confidence intervals (1.96 ≈ 95%).
    pub z: f64,
}

impl CampaignConfig {
    /// A campaign of `injections` strikes with default seed, automatic
    /// worker count, zero pulse width and 95% intervals.
    pub fn new(injections: u64) -> Self {
        Self {
            injections,
            seed: 0x5EED_FA17,
            workers: 0,
            pulse_width: 0.0,
            z: 1.96,
        }
    }

    /// Sets the campaign seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker count (`0` = one per available core).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the transient pulse width.
    pub fn with_pulse_width(mut self, width: f64) -> Self {
        assert!(width >= 0.0, "pulse width must be non-negative");
        self.pulse_width = width;
        self
    }
}

/// Per-site tallies of a finished campaign.
#[derive(Debug, Clone)]
pub struct SiteStats {
    /// The struck gate.
    pub gate: GateId,
    /// Its raw rate `err(g)` (the sampling weight).
    pub rate: f64,
    /// Strikes drawn at this site.
    pub trials: u64,
    /// Strikes whose flip reached an observation point (logic
    /// unmasked), before the timing test.
    pub logic_hits: u64,
    /// Strikes that latched (logic unmasked *and* inside the ELW).
    pub latches: u64,
}

impl SiteStats {
    /// Empirical observability `logic_hits / trials` (estimates the
    /// exact `obs(g, n)` of the fault-injection validator).
    pub fn empirical_obs(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.logic_hits as f64 / self.trials as f64
        }
    }

    /// Empirical latch probability `latches / trials` (estimates
    /// `obs(g, n) · |ELW(g)|/Φ`).
    pub fn latch_probability(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.latches as f64 / self.trials as f64
        }
    }

    /// Wilson interval on the latch probability at critical value `z`.
    pub fn latch_ci(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.latches, self.trials, z)
    }
}

/// The outcome of a Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Name of the analyzed circuit.
    pub circuit: String,
    /// Injections actually drawn.
    pub injections: u64,
    /// Seed the campaign ran with.
    pub seed: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Critical value used for intervals.
    pub z: f64,
    /// Σ `err(g)` over sites (the SER scale factor).
    pub total_rate: f64,
    /// Clock period Φ.
    pub phi: i64,
    /// Total latched strikes.
    pub latches: u64,
    /// Total logic-unmasked strikes (before the timing test).
    pub logic_hits: u64,
    /// Latched strikes that were visible at a primary output.
    pub po_latches: u64,
    /// Per-site tallies, in site order.
    pub sites: Vec<SiteStats>,
    /// Per-register latch counts `(register, latches)`: strikes that
    /// latched and corrupt that register's last-frame input.
    pub register_latches: Vec<(GateId, u64)>,
}

impl CampaignResult {
    /// Overall empirical latch probability `latches / injections`.
    pub fn latch_probability(&self) -> f64 {
        if self.injections == 0 {
            0.0
        } else {
            self.latches as f64 / self.injections as f64
        }
    }

    /// Wilson interval on the overall latch probability.
    pub fn latch_ci(&self) -> (f64, f64) {
        wilson_interval(self.latches, self.injections, self.z)
    }

    /// Empirical SER: `total_rate × latch_probability` — the
    /// Monte-Carlo estimate of the analytic eq. (4) total.
    pub fn ser(&self) -> f64 {
        self.total_rate * self.latch_probability()
    }

    /// Confidence interval on the empirical SER.
    pub fn ser_ci(&self) -> (f64, f64) {
        let (lo, hi) = self.latch_ci();
        (self.total_rate * lo, self.total_rate * hi)
    }
}

/// Whether a pulse `[t, t+w]`, recurring every `phi` (the strike time
/// is uniform within *some* clock cycle, and the latching windows
/// repeat each cycle), overlaps the interval set.
///
/// For each window `[a, b]` there is an overlapping fold iff some
/// integer `m` satisfies `t + mΦ ≤ b` and `t + w + mΦ ≥ a`, i.e.
/// `⌈(a − w − t)/Φ⌉ ≤ ⌊(b − t)/Φ⌋`.
pub(crate) fn pulse_latches(elw: &IntervalSet, t: f64, width: f64, phi: i64) -> bool {
    let phi = phi as f64;
    elw.intervals().iter().any(|&(a, b)| {
        let m_lo = ((a as f64 - width - t) / phi).ceil();
        let m_hi = ((b as f64 - t) / phi).floor();
        m_lo <= m_hi
    })
}

/// The exact probability that a zero-width strike at a uniform arrival
/// `t ∈ [0, Φ)` latches through `elw` — the measure of the window set
/// folded modulo Φ, over Φ.
///
/// Equals the analytic `|ELW|/Φ` whenever the folded images are
/// disjoint (the common case); strictly smaller when windows from
/// adjacent cycles overlap after folding. This is the exact expectation
/// of the campaign's timing test, useful for tight statistical checks.
pub fn folded_elw_fraction(elw: &IntervalSet, phi: i64) -> f64 {
    assert!(phi > 0, "phi must be positive");
    let mut folded = IntervalSet::new();
    for &(a, b) in elw.intervals() {
        if b - a >= phi {
            return 1.0; // a window longer than the period covers every arrival
        }
        let start = a.rem_euclid(phi);
        let len = b - a;
        if start + len <= phi {
            folded.insert(start, start + len);
        } else {
            folded.insert(start, phi);
            folded.insert(0, start + len - phi);
        }
    }
    folded.total_length() as f64 / phi as f64
}

#[derive(Clone)]
struct Tally {
    trials: Vec<u64>,
    logic: Vec<u64>,
    latch: Vec<u64>,
    reg_latch: Vec<u64>,
    po_latch: u64,
}

impl Tally {
    fn new(sites: usize, regs: usize) -> Self {
        Self {
            trials: vec![0; sites],
            logic: vec![0; sites],
            latch: vec![0; sites],
            reg_latch: vec![0; regs],
            po_latch: 0,
        }
    }

    fn absorb(&mut self, other: &Tally) {
        for (a, b) in self.trials.iter_mut().zip(&other.trials) {
            *a += b;
        }
        for (a, b) in self.logic.iter_mut().zip(&other.logic) {
            *a += b;
        }
        for (a, b) in self.latch.iter_mut().zip(&other.latch) {
            *a += b;
        }
        for (a, b) in self.reg_latch.iter_mut().zip(&other.reg_latch) {
            *a += b;
        }
        self.po_latch += other.po_latch;
    }
}

/// One worker's share of the campaign. Pure function of `(atlas, seed,
/// count, pulse_width)` — the parallel split cannot change any tally.
fn worker_run(atlas: &FaultAtlas, seed: u64, count: u64, pulse_width: f64) -> Tally {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut tally = Tally::new(atlas.sites().len(), atlas.registers().len());
    let bits = atlas.num_vectors();
    let phi = atlas.phi();
    for _ in 0..count {
        let site_idx = atlas.sample_site(&mut rng);
        let vector = rng.gen_range(bits);
        let arrival = rng.gen_f64() * phi as f64;

        tally.trials[site_idx] += 1;
        let site = &atlas.sites()[site_idx];
        let tables = atlas.tables_of_site(site);
        if !tables.detected.bit(vector) {
            continue; // logically masked
        }
        tally.logic[site_idx] += 1;
        if !pulse_latches(&tables.elw, arrival, pulse_width, phi) {
            continue; // timing masked
        }
        tally.latch[site_idx] += 1;
        for (slot, mask) in tables.reg_corrupt.iter().enumerate() {
            if mask.bit(vector) {
                tally.reg_latch[slot] += 1;
            }
        }
        if tables.po_detect.bit(vector) {
            tally.po_latch += 1;
        }
    }
    tally
}

/// Runs a campaign against a prebuilt atlas.
pub fn run_campaign_on(
    atlas: &FaultAtlas,
    circuit_name: &str,
    config: &CampaignConfig,
) -> CampaignResult {
    assert!(config.z > 0.0, "z must be positive");
    let workers = effective_workers(config.workers, config.injections);

    // Per-worker seeds come from a SplitMix64 stream over the campaign
    // seed; worker i always gets the i-th draw, independent of timing.
    let mut seeder = SplitMix64::new(config.seed);
    let shares: Vec<(u64, u64)> = (0..workers as u64)
        .map(|i| {
            let base = config.injections / workers as u64;
            let extra = u64::from(i < config.injections % workers as u64);
            (seeder.next_u64(), base + extra)
        })
        .collect();

    let mut total = Tally::new(atlas.sites().len(), atlas.registers().len());
    if workers <= 1 {
        if let Some(&(seed, count)) = shares.first() {
            total.absorb(&worker_run(atlas, seed, count, config.pulse_width));
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = shares
                .iter()
                .map(|&(seed, count)| {
                    scope.spawn(move || worker_run(atlas, seed, count, config.pulse_width))
                })
                .collect();
            // Joining in spawn order makes the merge order (and thus
            // any float accumulation) independent of scheduling.
            for handle in handles {
                total.absorb(&handle.join().expect("campaign worker panicked"));
            }
        });
    }

    let sites: Vec<SiteStats> = atlas
        .sites()
        .iter()
        .enumerate()
        .map(|(i, site)| SiteStats {
            gate: site.gate,
            rate: site.rate,
            trials: total.trials[i],
            logic_hits: total.logic[i],
            latches: total.latch[i],
        })
        .collect();
    let latches = total.latch.iter().sum();
    let logic_hits = total.logic.iter().sum();
    let register_latches = atlas
        .registers()
        .iter()
        .zip(&total.reg_latch)
        .map(|(&r, &n)| (r, n))
        .collect();

    CampaignResult {
        circuit: circuit_name.to_string(),
        injections: config.injections,
        seed: config.seed,
        workers,
        z: config.z,
        total_rate: atlas.total_rate(),
        phi: atlas.phi(),
        latches,
        logic_hits,
        po_latches: total.po_latch,
        sites,
        register_latches,
    }
}

/// Builds the atlas for `circuit` and runs a campaign in one call.
///
/// # Errors
///
/// Returns [`retime::RetimeError`] if the circuit cannot be modeled as
/// a retiming graph, as in [`ser_engine::analyze`].
pub fn run_campaign(
    circuit: &Circuit,
    ser: &SerConfig,
    config: &CampaignConfig,
) -> Result<CampaignResult, retime::RetimeError> {
    let atlas = FaultAtlas::build(circuit, ser, config.workers)?;
    Ok(run_campaign_on(&atlas, circuit.name(), config))
}

/// Resolves the worker count through the suite-wide policy
/// ([`netlist::parallel`]: flag > `SER_THREADS` > hardware), capped at
/// 64 workers — beyond that the per-worker injection shares get too
/// small to amortize thread startup.
fn effective_workers(requested: usize, injections: u64) -> usize {
    netlist::parallel::resolve_workers_for(requested, injections.clamp(1, 64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn pulse_overlap_basic() {
        let elw = IntervalSet::of(20, 22);
        // Inside the window.
        assert!(pulse_latches(&elw, 21.0, 0.0, 30));
        // Outside, zero width.
        assert!(!pulse_latches(&elw, 5.0, 0.0, 30));
        // Outside but wide enough to reach the window.
        assert!(pulse_latches(&elw, 5.0, 15.5, 30));
        // Folding: arrival 21 in the *next* cycle still hits [20, 22].
        assert!(pulse_latches(&elw, 21.0 - 30.0 + 30.0, 0.0, 30));
        // Window beyond phi (register hold region [phi, phi + Th]):
        // an early arrival of the next cycle folds into it.
        let hold = IntervalSet::of(30, 32);
        assert!(pulse_latches(&hold, 1.5, 0.0, 30));
        assert!(!pulse_latches(&hold, 4.0, 0.0, 30));
    }

    #[test]
    fn pulse_latch_probability_matches_elw_fraction() {
        // For zero width and a window inside [0, phi), the latch
        // probability over uniform arrivals is |ELW|/phi.
        let elw = IntervalSet::of(10, 16);
        let phi = 25;
        let mut rng = Xoshiro256::seed_from_u64(3);
        let trials = 200_000;
        let hits = (0..trials)
            .filter(|_| pulse_latches(&elw, rng.gen_f64() * phi as f64, 0.0, phi))
            .count();
        let got = hits as f64 / trials as f64;
        let expect = 6.0 / 25.0;
        assert!((got - expect).abs() < 0.005, "got {got}, expected {expect}");
    }

    #[test]
    fn campaign_is_deterministic_for_fixed_seed_and_workers() {
        let c = samples::s27_like();
        let ser = SerConfig::small(30);
        let cfg = CampaignConfig::new(20_000).with_seed(42).with_workers(3);
        let a = run_campaign(&c, &ser, &cfg).unwrap();
        let b = run_campaign(&c, &ser, &cfg).unwrap();
        assert_eq!(a.latches, b.latches);
        assert_eq!(a.po_latches, b.po_latches);
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa.trials, sb.trials);
            assert_eq!(sa.latches, sb.latches);
        }
        assert_eq!(a.register_latches, b.register_latches);
    }

    #[test]
    fn worker_counts_agree_statistically() {
        let c = samples::s27_like();
        let ser = SerConfig::small(30);
        let one = run_campaign(&c, &ser, &CampaignConfig::new(40_000).with_workers(1)).unwrap();
        let four = run_campaign(&c, &ser, &CampaignConfig::new(40_000).with_workers(4)).unwrap();
        let (lo, hi) = one.latch_ci();
        let p = four.latch_probability();
        assert!(
            lo <= p && p <= hi,
            "4-worker estimate {p} outside 1-worker CI [{lo}, {hi}]"
        );
    }

    #[test]
    fn zero_width_pulse_probability_in_bounds() {
        let c = samples::fig1_like();
        let ser = SerConfig::small(25);
        let r = run_campaign(&c, &ser, &CampaignConfig::new(10_000)).unwrap();
        assert!(r.latches <= r.logic_hits);
        assert!(r.logic_hits <= r.injections);
        assert!(r.ser() >= 0.0);
        let (lo, hi) = r.ser_ci();
        assert!(lo <= r.ser() && r.ser() <= hi);
    }

    #[test]
    fn wider_pulses_latch_no_less_often() {
        let c = samples::s27_like();
        let ser = SerConfig::small(30);
        let narrow = run_campaign(&c, &ser, &CampaignConfig::new(20_000).with_seed(9)).unwrap();
        let wide = run_campaign(
            &c,
            &ser,
            &CampaignConfig::new(20_000)
                .with_seed(9)
                .with_pulse_width(5.0),
        )
        .unwrap();
        assert!(wide.latches >= narrow.latches);
    }
}
