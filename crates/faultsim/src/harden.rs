//! Selective-hardening advisor: which cells to protect under an area
//! budget.
//!
//! Retiming (the paper's contribution) moves registers so fewer
//! latching windows are exposed; selective hardening is the orthogonal
//! knob — replace the worst cells with protected (DICE/TMR-style)
//! variants whose raw rate is a small fraction of the original. Both
//! need the same per-site quantity: each site's contribution to the
//! total SER, `err(g) · obs(g,n) · |ELW(g)|/Φ`.
//!
//! The advisor scores that contribution **twice**, from the two most
//! independent engines available — the Monte-Carlo campaign's per-site
//! latch tallies and the propagation-probability engine's closed-form
//! per-site product — and averages them, so a site only ranks high
//! when both engines agree it matters. Payoff per unit of hardened
//! area is then greedily maximized under the budget. The plan carries
//! its own validation: re-run the *same-seed* campaign with the
//! hardened rate model and measure the realized SER drop.

use netlist::{Circuit, GateId, GateKind};
use ser_engine::{EstimateError, PropProbEstimator, SerConfig, SerEstimator};

use crate::campaign::{run_campaign, CampaignConfig, CampaignResult};

/// Parameters of the hardening advisor.
#[derive(Debug, Clone)]
pub struct HardenConfig {
    /// Fraction of the circuit's total cell area that may be spent on
    /// hardening overhead (e.g. `0.2` = 20%).
    pub area_budget: f64,
    /// Residual rate fraction of a hardened cell (a hardened cell's
    /// raw rate is `hardening_factor × err(g)`; DICE-style cells land
    /// around 0.1 or below).
    pub hardening_factor: f64,
    /// Area overhead of hardening one cell, as a multiple of the
    /// cell's own area (DICE/TMR-style duplication costs roughly the
    /// cell again).
    pub area_overhead: f64,
    /// Hard cap on the number of hardened cells (0 = unlimited).
    pub max_picks: usize,
}

impl Default for HardenConfig {
    fn default() -> Self {
        Self {
            area_budget: 0.1,
            hardening_factor: 0.1,
            area_overhead: 1.0,
            max_picks: 0,
        }
    }
}

impl HardenConfig {
    /// An advisor spending at most `area_budget` (a fraction of total
    /// cell area) with default hardening characteristics.
    pub fn new(area_budget: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&area_budget),
            "area budget is a fraction of total area"
        );
        Self {
            area_budget,
            ..Self::default()
        }
    }
}

/// Relative cell-area proxy per gate kind (unit = one inverter-ish
/// cell). Only the *ratios* matter to the greedy knapsack.
pub fn cell_area(kind: GateKind, fanin_count: usize) -> f64 {
    match kind {
        GateKind::Buf | GateKind::Not => 1.0,
        GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
            2.0 + 0.5 * fanin_count.saturating_sub(2) as f64
        }
        GateKind::Xor | GateKind::Xnor | GateKind::Mux => 3.0,
        GateKind::Dff => 4.0,
        GateKind::Input | GateKind::Output | GateKind::Const0 | GateKind::Const1 => 0.0,
    }
}

/// One strike site's hardening economics.
#[derive(Debug, Clone)]
pub struct HardenCandidate {
    /// The cell.
    pub gate: GateId,
    /// Its name in the netlist.
    pub name: String,
    /// Its kind.
    pub kind: GateKind,
    /// Raw rate `err(g)` under the unhardened model.
    pub rate: f64,
    /// The cell's own area ([`cell_area`]).
    pub area: f64,
    /// Extra area hardening this cell costs
    /// (`area × area_overhead`).
    pub cost: f64,
    /// The site's SER contribution per the Monte-Carlo campaign
    /// (`total_rate × latches_site / injections`).
    pub mc_contribution: f64,
    /// The site's SER contribution per the propagation-probability
    /// engine (`err(g) × prop(g) × |ELW(g)|/Φ`).
    pub pp_contribution: f64,
    /// Expected SER reduction from hardening this cell:
    /// `(1 − hardening_factor)` times the engine-averaged contribution.
    pub payoff: f64,
    /// Payoff per unit of hardening area — the greedy ranking key.
    pub score: f64,
    /// Whether the greedy pass selected this cell.
    pub selected: bool,
}

/// A ranked hardening plan.
#[derive(Debug, Clone)]
pub struct HardenPlan {
    /// Circuit name.
    pub circuit: String,
    /// The advisor parameters the plan was built under.
    pub config: HardenConfig,
    /// Total cell area of the circuit (markers excluded).
    pub total_area: f64,
    /// Area the budget allows (`area_budget × total_area`).
    pub budget_area: f64,
    /// Hardening area actually spent.
    pub spent_area: f64,
    /// The unhardened SER (campaign estimate).
    pub ser_before: f64,
    /// Every strikeable cell, ranked by score (best first); the
    /// selected ones form the plan.
    pub candidates: Vec<HardenCandidate>,
}

impl HardenPlan {
    /// The selected cells, best first.
    pub fn selected(&self) -> Vec<&HardenCandidate> {
        self.candidates.iter().filter(|c| c.selected).collect()
    }

    /// Predicted SER after hardening (engine-averaged payoffs
    /// subtracted from the campaign baseline).
    pub fn predicted_ser(&self) -> f64 {
        let saved: f64 = self.selected().iter().map(|c| c.payoff).sum();
        (self.ser_before - saved).max(0.0)
    }

    /// The rate model with every selected cell hardened — feed this to
    /// any estimator (or [`HardenPlan::validate`]) to measure the plan.
    pub fn hardened_rates(&self, base: &ser_engine::ErrorRateModel) -> ser_engine::ErrorRateModel {
        let mut model = base.clone();
        for c in self.selected() {
            model = model.with_gate_scale(c.name.clone(), self.config.hardening_factor);
        }
        model
    }

    /// Validates the plan: re-runs the same campaign (same seed, same
    /// injections) with the hardened rate model and returns
    /// `(ser_before, ser_after)` — the realized, not predicted, drop.
    ///
    /// # Errors
    ///
    /// [`retime::RetimeError`] if the circuit cannot be modeled.
    pub fn validate(
        &self,
        circuit: &Circuit,
        config: &SerConfig,
        campaign: &CampaignConfig,
    ) -> Result<(f64, f64), retime::RetimeError> {
        let hardened = SerConfig {
            rates: self.hardened_rates(&config.rates),
            ..config.clone()
        };
        let after = run_campaign(circuit, &hardened, campaign)?;
        Ok((self.ser_before, after.ser()))
    }

    /// The plan as CSV (`rank` counts selected cells first).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "rank,name,kind,rate,area,cost,mc_contribution,pp_contribution,payoff,score,selected\n",
        );
        for (rank, c) in self.candidates.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{:.6e},{:.1},{:.1},{:.6e},{:.6e},{:.6e},{:.6e},{}\n",
                rank + 1,
                c.name,
                c.kind,
                c.rate,
                c.area,
                c.cost,
                c.mc_contribution,
                c.pp_contribution,
                c.payoff,
                c.score,
                c.selected
            ));
        }
        out
    }

    /// Human-readable plan summary.
    pub fn summary(&self) -> String {
        let selected = self.selected();
        let mut out = format!(
            "hardening plan {}: budget {:.1} of {:.1} area units ({:.0}%), spent {:.1} on {} cells\n",
            self.circuit,
            self.budget_area,
            self.total_area,
            self.config.area_budget * 100.0,
            self.spent_area,
            selected.len()
        );
        out.push_str(&format!(
            "  SER {:.4e} -> predicted {:.4e} ({:.1}% reduction predicted)\n",
            self.ser_before,
            self.predicted_ser(),
            if self.ser_before > 0.0 {
                (1.0 - self.predicted_ser() / self.ser_before) * 100.0
            } else {
                0.0
            }
        ));
        for (i, c) in selected.iter().enumerate() {
            out.push_str(&format!(
                "  {:>2}. {} ({}) payoff {:.3e} / area {:.1} -> score {:.3e}\n",
                i + 1,
                c.name,
                c.kind,
                c.payoff,
                c.cost,
                c.score
            ));
        }
        out
    }
}

/// Builds a hardening plan: runs a Monte-Carlo campaign and the
/// propagation-probability engine, cross-scores every strikeable cell,
/// and greedily picks the best payoff-per-area under the budget.
///
/// # Errors
///
/// [`EstimateError`] if either engine fails.
pub fn advise(
    circuit: &Circuit,
    config: &SerConfig,
    campaign: &CampaignConfig,
    harden: &HardenConfig,
) -> Result<HardenPlan, EstimateError> {
    let mc = run_campaign(circuit, config, campaign).map_err(EstimateError::from)?;
    let pp = PropProbEstimator.estimate(circuit, config)?;
    Ok(plan_from_scores(circuit, &mc, &pp.site_p, harden))
}

/// The deterministic planning half of [`advise`], taking the campaign
/// and the propagation-probability per-site latch probabilities as
/// inputs (so callers holding a finished campaign reuse it).
pub fn plan_from_scores(
    circuit: &Circuit,
    mc: &CampaignResult,
    pp_site_p: &[f64],
    harden: &HardenConfig,
) -> HardenPlan {
    assert_eq!(pp_site_p.len(), circuit.len(), "per-gate probabilities");
    let total_area: f64 = circuit
        .iter()
        .map(|(_, g)| cell_area(g.kind(), g.fanins().len()))
        .sum();
    let budget_area = harden.area_budget * total_area;
    let keep = 1.0 - harden.hardening_factor;
    let mut candidates: Vec<HardenCandidate> = mc
        .sites
        .iter()
        .filter(|s| s.rate > 0.0)
        .map(|s| {
            let gate = circuit.gate(s.gate);
            let area = cell_area(gate.kind(), gate.fanins().len());
            let cost = area * harden.area_overhead;
            // Importance sampling puts trials ∝ err(g), so the site's
            // share of the campaign SER is total_rate × latches/N.
            let mc_contribution = if mc.injections == 0 {
                0.0
            } else {
                mc.total_rate * s.latches as f64 / mc.injections as f64
            };
            let pp_contribution = s.rate * pp_site_p[s.gate.index()];
            let payoff = keep * 0.5 * (mc_contribution + pp_contribution);
            HardenCandidate {
                gate: s.gate,
                name: gate.name().to_string(),
                kind: gate.kind(),
                rate: s.rate,
                area,
                cost,
                mc_contribution,
                pp_contribution,
                payoff,
                score: if cost > 0.0 { payoff / cost } else { 0.0 },
                selected: false,
            }
        })
        .collect();
    candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.gate.cmp(&b.gate)));
    let mut spent_area = 0.0;
    let mut picks = 0usize;
    for c in &mut candidates {
        if harden.max_picks > 0 && picks >= harden.max_picks {
            break;
        }
        if c.payoff <= 0.0 {
            break;
        }
        if spent_area + c.cost > budget_area {
            continue;
        }
        c.selected = true;
        spent_area += c.cost;
        picks += 1;
    }
    HardenPlan {
        circuit: circuit.name().to_string(),
        config: harden.clone(),
        total_area,
        budget_area,
        spent_area,
        ser_before: mc.ser(),
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn plan_respects_the_budget_and_reduces_ser() {
        let c = samples::s27_like();
        let config = SerConfig::small(30);
        let campaign = CampaignConfig::new(40_000).with_seed(11);
        let plan = advise(&c, &config, &campaign, &HardenConfig::new(0.3)).unwrap();
        assert!(plan.spent_area <= plan.budget_area + 1e-9);
        assert!(!plan.selected().is_empty(), "30% budget picks something");
        assert!(plan.predicted_ser() < plan.ser_before);
        // Validation: the realized campaign under hardened rates drops.
        let (before, after) = plan.validate(&c, &config, &campaign).unwrap();
        assert_eq!(before, plan.ser_before);
        assert!(
            after < before,
            "hardening must reduce measured SER: {after} vs {before}"
        );
        // Ranked output is well-formed.
        let csv = plan.to_csv();
        assert!(csv.starts_with("rank,name,kind"));
        assert_eq!(csv.lines().count(), plan.candidates.len() + 1);
        assert!(plan.summary().contains("hardening plan"));
    }

    #[test]
    fn zero_budget_hardens_nothing() {
        let c = samples::fig1_like();
        let config = SerConfig::small(25);
        let plan = advise(
            &c,
            &config,
            &CampaignConfig::new(2_000),
            &HardenConfig::new(0.0),
        )
        .unwrap();
        assert!(plan.selected().is_empty());
        assert_eq!(plan.spent_area, 0.0);
        assert_eq!(plan.predicted_ser(), plan.ser_before);
    }

    #[test]
    fn max_picks_caps_the_plan() {
        let c = samples::s27_like();
        let config = SerConfig::small(30);
        let harden = HardenConfig {
            max_picks: 1,
            ..HardenConfig::new(1.0)
        };
        let plan = advise(&c, &config, &CampaignConfig::new(5_000), &harden).unwrap();
        assert_eq!(plan.selected().len(), 1);
        // The pick is the top-scored candidate.
        assert!(plan.candidates[0].selected);
    }

    #[test]
    fn hardened_rates_scale_only_selected_cells() {
        let c = samples::s27_like();
        let config = SerConfig::small(30);
        let harden = HardenConfig {
            max_picks: 2,
            ..HardenConfig::new(1.0)
        };
        let plan = advise(&c, &config, &CampaignConfig::new(5_000), &harden).unwrap();
        let model = plan.hardened_rates(&config.rates);
        assert_eq!(model.num_gate_scales(), 2);
        for cand in &plan.candidates {
            let expect = if cand.selected {
                harden.hardening_factor
            } else {
                1.0
            };
            assert_eq!(model.gate_scale(&cand.name), expect, "{}", cand.name);
        }
    }

    #[test]
    fn area_proxy_orders_kinds_sensibly() {
        assert!(cell_area(GateKind::Dff, 1) > cell_area(GateKind::Xor, 2));
        assert!(cell_area(GateKind::Xor, 2) > cell_area(GateKind::Nand, 2));
        assert!(cell_area(GateKind::Nand, 4) > cell_area(GateKind::Nand, 2));
        assert_eq!(cell_area(GateKind::Input, 0), 0.0);
    }
}
