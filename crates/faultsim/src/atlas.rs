//! Campaign precomputation: the *fault atlas*.
//!
//! A Monte-Carlo campaign draws millions of `(site, vector, arrival,
//! width)` tuples, but the logic-propagation outcome of a flip depends
//! only on `(site, vector)` — and the bit-parallel simulation already
//! evaluates all `K` vectors of a site at once. The atlas therefore
//! resimulates each distinct injection node once up front (one faulty
//! `n`-frame window per node, exactly the procedure of
//! [`ser_engine::odc::exact_fault_injection`]), and the per-injection
//! hot loop reduces to two table lookups and an interval test.
//!
//! The atlas is immutable after construction and shared by reference
//! across campaign workers.

use netlist::rng::Xoshiro256;
use netlist::{Circuit, GateId, GateKind};
use retime::{RetimeGraph, Retiming};
use ser_engine::elw::compute_elws;
use ser_engine::sim::FrameTrace;
use ser_engine::{eval_gate, register_driver, IntervalSet, SerConfig, Signature};

/// One strike site of the campaign: a gate (or register) with a
/// positive raw rate.
#[derive(Debug, Clone)]
pub struct Site {
    /// The struck gate (combinational gate or register).
    pub gate: GateId,
    /// The node whose output the transient is injected at. For
    /// combinational gates this is the gate itself; for registers it is
    /// the driving combinational gate (registers are wires in the
    /// time-frame expansion — same convention as [`ser_engine::analyze`]).
    pub node: GateId,
    /// The raw SEU rate `err(gate)` used as the site's sampling weight.
    pub rate: f64,
    /// Index into the atlas's dense node-table array.
    pub(crate) table: usize,
}

/// Per-injection-node propagation tables.
#[derive(Debug, Clone)]
pub(crate) struct NodeTables {
    /// Bit `k` set ⟺ flipping the node in frame 0 of vector `k` is
    /// visible at a primary output of any frame or at a register input
    /// of the last frame (the paper's observation points).
    pub detected: Signature,
    /// Per register (slot order of [`Circuit::registers`]): bit `k` set
    /// ⟺ that register's last-frame `D` input is corrupted.
    pub reg_corrupt: Vec<Signature>,
    /// Bit `k` set ⟺ some primary output of some frame differs.
    pub po_detect: Signature,
    /// The node's exact error-latching window (for a register site,
    /// its driver's window).
    pub elw: IntervalSet,
}

/// Immutable precomputed campaign state: strike sites with cumulative
/// sampling weights plus per-node propagation tables.
#[derive(Debug, Clone)]
pub struct FaultAtlas {
    phi: i64,
    num_vectors: usize,
    total_rate: f64,
    sites: Vec<Site>,
    /// `cumulative[i]` = Σ rate of sites `0..=i` (for weighted sampling).
    cumulative: Vec<f64>,
    tables: Vec<NodeTables>,
    /// Gate index → table index of the gate's effective node, for every
    /// gate that is a site or an effective node.
    table_of_gate: Vec<Option<usize>>,
    registers: Vec<GateId>,
}

impl FaultAtlas {
    /// Precomputes the atlas for `circuit` under `config`, using up to
    /// `workers` threads for the per-node resimulations (`0` means one
    /// thread per available core). The result is identical for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Returns [`retime::RetimeError`] if the circuit cannot be modeled
    /// as a retiming graph (register-only loops), as in
    /// [`ser_engine::analyze`].
    pub fn build(
        circuit: &Circuit,
        config: &SerConfig,
        workers: usize,
    ) -> Result<Self, retime::RetimeError> {
        let trace = FrameTrace::simulate(circuit, config.sim);
        let graph = RetimeGraph::from_circuit(circuit, &config.delays)?;
        let vertex_elws = compute_elws(&graph, &Retiming::zero(&graph), config.elw)?;

        // Strike sites: every gate with a positive raw rate.
        let mut sites = Vec::new();
        let mut node_ids: Vec<GateId> = Vec::new();
        let mut table_of_gate: Vec<Option<usize>> = vec![None; circuit.len()];
        for (id, gate) in circuit.iter() {
            let rate = config.rates.rate(circuit, id);
            if rate <= 0.0 {
                continue;
            }
            let node = if gate.kind() == GateKind::Dff {
                register_driver(circuit, id)
            } else {
                id
            };
            let table = match table_of_gate[node.index()] {
                Some(t) => t,
                None => {
                    let t = node_ids.len();
                    node_ids.push(node);
                    table_of_gate[node.index()] = Some(t);
                    t
                }
            };
            table_of_gate[id.index()] = Some(table);
            sites.push(Site {
                gate: id,
                node,
                rate,
                table,
            });
        }

        // Per-node faulty resimulations, fanned out across workers.
        // Each node is independent, so any split is bit-identical.
        let worker_count = netlist::parallel::resolve_workers_for(workers, node_ids.len());
        let mut tables: Vec<NodeTables> = Vec::with_capacity(node_ids.len());
        if worker_count <= 1 || node_ids.len() <= 1 {
            for &node in &node_ids {
                tables.push(resimulate_node(circuit, &trace, node));
            }
        } else {
            let chunk = node_ids.len().div_ceil(worker_count);
            let mut parts: Vec<Vec<NodeTables>> = Vec::new();
            let trace_ref = &trace;
            std::thread::scope(|scope| {
                let handles: Vec<_> = node_ids
                    .chunks(chunk)
                    .map(|nodes| {
                        scope.spawn(move || {
                            nodes
                                .iter()
                                .map(|&node| resimulate_node(circuit, trace_ref, node))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    parts.push(handle.join().expect("atlas worker panicked"));
                }
            });
            tables.extend(parts.into_iter().flatten());
        }

        // Attach the effective error-latching window of each node.
        let params = config.elw;
        for (tables_entry, &node) in tables.iter_mut().zip(&node_ids) {
            tables_entry.elw = match graph.vertex_of(node) {
                Some(v) => vertex_elws[v.index()].clone(),
                // Node outside the retiming graph (e.g. a register fed
                // directly by a primary input): the strike lands on the
                // register boundary itself, so the latching window
                // applies unshifted.
                None => IntervalSet::of(params.window_left(), params.window_right()),
            };
        }

        let mut cumulative = Vec::with_capacity(sites.len());
        let mut total_rate = 0.0;
        for site in &sites {
            total_rate += site.rate;
            cumulative.push(total_rate);
        }

        Ok(Self {
            phi: config.elw.phi,
            num_vectors: config.sim.num_vectors,
            total_rate,
            sites,
            cumulative,
            tables,
            table_of_gate,
            registers: circuit.registers().to_vec(),
        })
    }

    /// The clock period Φ of the underlying configuration.
    pub fn phi(&self) -> i64 {
        self.phi
    }

    /// Number of simulation vectors `K` per frame.
    pub fn num_vectors(&self) -> usize {
        self.num_vectors
    }

    /// Σ `err(g)` over all strike sites — the factor converting a latch
    /// probability into an SER.
    pub fn total_rate(&self) -> f64 {
        self.total_rate
    }

    /// All strike sites, in gate order.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The registers of the circuit, in slot order (the order of
    /// per-register latch counts).
    pub fn registers(&self) -> &[GateId] {
        &self.registers
    }

    /// The effective injection node of a site gate (the gate itself, or
    /// the driving gate for a register). `None` if the gate is not a
    /// strike site.
    pub fn effective_node(&self, gate: GateId) -> Option<GateId> {
        self.sites.iter().find(|s| s.gate == gate).map(|s| s.node)
    }

    /// The logic-detection mask of a site gate: bit `k` set ⟺ a flip of
    /// its effective node in frame 0 of vector `k` reaches an
    /// observation point. `None` if the gate is not a site or node.
    pub fn detection_mask(&self, gate: GateId) -> Option<&Signature> {
        self.table_of_gate
            .get(gate.index())
            .copied()
            .flatten()
            .map(|t| &self.tables[t].detected)
    }

    /// The exact error-latching window applied to a site gate's
    /// transients. `None` if the gate is not a site or node.
    pub fn latch_window(&self, gate: GateId) -> Option<&IntervalSet> {
        self.table_of_gate
            .get(gate.index())
            .copied()
            .flatten()
            .map(|t| &self.tables[t].elw)
    }

    pub(crate) fn tables_of_site(&self, site: &Site) -> &NodeTables {
        &self.tables[site.table]
    }

    /// Draws a site index with probability proportional to its rate.
    pub(crate) fn sample_site(&self, rng: &mut Xoshiro256) -> usize {
        debug_assert!(!self.sites.is_empty());
        let u = rng.gen_f64() * self.total_rate;
        let idx = self.cumulative.partition_point(|&c| c <= u);
        idx.min(self.sites.len() - 1)
    }
}

/// Resimulates the `n`-frame window with `victim`'s output flipped in
/// frame 0, for all `K` vectors at once, and records what reaches the
/// observation points.
///
/// This is an independent reimplementation of the per-victim loop of
/// [`ser_engine::odc::exact_fault_injection`] (same injection model,
/// same observation points), kept separate so the Monte-Carlo engine
/// does not share code with the machinery it cross-validates beyond the
/// trace itself. The returned `elw` field is a placeholder filled by
/// the caller.
fn resimulate_node(circuit: &Circuit, trace: &FrameTrace, victim: GateId) -> NodeTables {
    let bits = trace.config().num_vectors;
    let frames = trace.frames();
    let n = circuit.len();

    let mut po_detect = Signature::zeros(bits);
    let mut faulty: Vec<Signature> = (0..n)
        .map(|i| trace.value(0, GateId::new(i)).to_signature())
        .collect();
    // The flip must survive for non-reevaluated nodes (primary inputs).
    faulty[victim.index()] = faulty[victim.index()].not();
    let mut reg_corrupt: Vec<Signature> = Vec::new();

    for f in 0..frames {
        if f > 0 {
            // Register outputs take the previous faulty frame's D
            // values; everything else restarts from the nominal trace.
            let prev = faulty.clone();
            for (i, _) in circuit.iter() {
                faulty[i.index()] = trace.value(f, i).to_signature();
            }
            for &q in circuit.registers() {
                let d = circuit.gate(q).fanins()[0];
                faulty[q.index()] = prev[d.index()].clone();
            }
        }
        for &g in circuit.topo_order() {
            let gate = circuit.gate(g);
            if gate.kind() == GateKind::Input {
                continue;
            }
            let fanins: Vec<&Signature> =
                gate.fanins().iter().map(|&x| &faulty[x.index()]).collect();
            let mut value = eval_gate(gate.kind(), &fanins, bits);
            if f == 0 && g == victim {
                value = value.not();
            }
            faulty[g.index()] = value;
        }
        for &po in circuit.outputs() {
            po_detect.or_assign(&faulty[po.index()].xor(&trace.value(f, po).to_signature()));
        }
        if f == frames - 1 {
            reg_corrupt = circuit
                .registers()
                .iter()
                .map(|&q| {
                    let d = circuit.gate(q).fanins()[0];
                    faulty[d.index()].xor(&trace.value(f, d).to_signature())
                })
                .collect();
        }
    }

    let mut detected = po_detect.clone();
    for mask in &reg_corrupt {
        detected.or_assign(mask);
    }
    NodeTables {
        detected,
        reg_corrupt,
        po_detect,
        elw: IntervalSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;
    use ser_engine::odc::exact_fault_injection;

    fn small_config(phi: i64) -> SerConfig {
        SerConfig::small(phi)
    }

    #[test]
    fn detection_density_matches_exact_fault_injection() {
        let c = samples::s27_like();
        let config = small_config(30);
        let atlas = FaultAtlas::build(&c, &config, 1).unwrap();
        let exact = exact_fault_injection(&c, config.sim);
        for site in atlas.sites() {
            if c.gate(site.gate).kind() == GateKind::Dff {
                continue; // register sites share their driver's mask
            }
            let mask = atlas.detection_mask(site.gate).unwrap();
            assert!(
                (mask.density() - exact[site.gate.index()]).abs() < 1e-12,
                "site {}",
                c.gate(site.gate).name()
            );
        }
    }

    #[test]
    fn register_sites_use_driver_tables() {
        let c = samples::s27_like();
        let atlas = FaultAtlas::build(&c, &small_config(30), 1).unwrap();
        for &q in c.registers() {
            let driver = register_driver(&c, q);
            assert_eq!(atlas.effective_node(q), Some(driver));
            assert_eq!(
                atlas.detection_mask(q).unwrap(),
                atlas.detection_mask(driver).unwrap()
            );
            assert_eq!(
                atlas.latch_window(q).unwrap(),
                atlas.latch_window(driver).unwrap()
            );
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let c = samples::fig1_like();
        let a = FaultAtlas::build(&c, &small_config(25), 1).unwrap();
        let b = FaultAtlas::build(&c, &small_config(25), 4).unwrap();
        assert_eq!(a.sites.len(), b.sites.len());
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa.gate, sb.gate);
            assert_eq!(a.tables_of_site(sa).detected, b.tables_of_site(sb).detected);
            assert_eq!(a.tables_of_site(sa).elw, b.tables_of_site(sb).elw);
        }
    }

    #[test]
    fn weighted_sampling_covers_all_sites() {
        let c = samples::s27_like();
        let atlas = FaultAtlas::build(&c, &small_config(30), 1).unwrap();
        let mut rng = Xoshiro256::seed_from_u64(7);
        let mut hits = vec![0u64; atlas.sites().len()];
        for _ in 0..20_000 {
            hits[atlas.sample_site(&mut rng)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!(h > 0, "site {i} never sampled");
        }
        // Frequencies track rates: compare two sites with a rate ratio.
        let total: u64 = hits.iter().sum();
        for (site, &h) in atlas.sites().iter().zip(&hits) {
            let expect = site.rate / atlas.total_rate();
            let got = h as f64 / total as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "site {:?}: got {got:.3}, expected {expect:.3}",
                site.gate
            );
        }
    }

    #[test]
    fn markers_are_not_sites() {
        let c = samples::s27_like();
        let atlas = FaultAtlas::build(&c, &small_config(30), 1).unwrap();
        for site in atlas.sites() {
            let kind = c.gate(site.gate).kind();
            assert!(
                !matches!(
                    kind,
                    GateKind::Input | GateKind::Output | GateKind::Const0 | GateKind::Const1
                ),
                "{kind} cannot be struck"
            );
        }
    }
}
