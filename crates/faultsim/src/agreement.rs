//! Three-way (and, on small circuits, four-way) estimator agreement —
//! the suite's first-class correctness oracle.
//!
//! The analytic ODC engine, the propagation-probability engine and the
//! Monte-Carlo campaign estimate the same eq. (4) quantity from
//! structurally unrelated machinery. A bug shared by two of them would
//! have to be a *modeling* bug reproduced independently three times —
//! so pairwise agreement within documented tolerance bands is strong
//! evidence of correctness, and any pair diverging past its band is a
//! structured, reportable event rather than a silent drift. Where the
//! exhaustive oracle is feasible (`R + I·n` source bits under the
//! cap), every engine is additionally judged against ground truth.
//!
//! Tolerances are per *pair class*, not one global knob, because the
//! legitimate disagreement mechanisms differ:
//!
//! * two deterministic engines (analytic vs propprob, or either vs the
//!   exact oracle) differ only by their reconvergence approximations —
//!   a relative gap band;
//! * a deterministic engine vs Monte-Carlo differs by sampling noise
//!   *plus* approximation — the campaign's Wilson interval widened by
//!   a relative tolerance (the same scheme as [`crate::CrossCheck`]).

use netlist::{Circuit, GateId};
use ser_engine::{
    AnalyticEstimator, EngineKind, EstimateError, ExactEstimator, PropProbEstimator, SerConfig,
    SerEstimate, SerEstimator,
};

use crate::crosscheck::inside_widened;
use crate::estimator::MonteCarloEstimator;

/// Per-pair-class tolerance bands of the agreement oracle. The
/// defaults are calibrated on the Table I twin circuits (see
/// `tests/cross_check.rs` for the per-circuit values used in CI).
#[derive(Debug, Clone, Copy)]
pub struct ToleranceBands {
    /// Allowed relative SER gap between two deterministic sampled
    /// estimators (analytic vs propprob): both approximate
    /// reconvergent fanout, in different directions.
    pub deterministic_pair: f64,
    /// Relative widening of the Monte-Carlo Wilson interval when a
    /// deterministic estimate is checked against the campaign.
    pub sampled_pair: f64,
    /// Allowed relative SER gap between a deterministic estimator and
    /// the exhaustive oracle.
    pub exact_pair: f64,
}

impl Default for ToleranceBands {
    fn default() -> Self {
        Self {
            deterministic_pair: 0.25,
            sampled_pair: 0.25,
            exact_pair: 0.25,
        }
    }
}

impl ToleranceBands {
    /// One uniform relative band for all three pair classes.
    pub fn uniform(tol: f64) -> Self {
        assert!(tol >= 0.0, "tolerance must be non-negative");
        Self {
            deterministic_pair: tol,
            sampled_pair: tol,
            exact_pair: tol,
        }
    }
}

/// The worst per-site latch-probability gaps of a disagreeing pair —
/// the actionable half of a disagreement report.
#[derive(Debug, Clone)]
pub struct SiteDivergence {
    /// The struck gate.
    pub gate: GateId,
    /// Its name in the netlist.
    pub name: String,
    /// Latch probability under the first engine.
    pub p_a: f64,
    /// Latch probability under the second engine.
    pub p_b: f64,
}

impl SiteDivergence {
    /// Absolute latch-probability gap.
    pub fn gap(&self) -> f64 {
        (self.p_a - self.p_b).abs()
    }
}

/// One pairwise verdict of the agreement oracle.
#[derive(Debug, Clone)]
pub struct PairVerdict {
    /// First engine of the pair.
    pub a: EngineKind,
    /// Second engine of the pair.
    pub b: EngineKind,
    /// First engine's SER.
    pub ser_a: f64,
    /// Second engine's SER.
    pub ser_b: f64,
    /// Relative gap `|a − b| / max(|a|, |b|)` (0 when both are 0).
    pub gap: f64,
    /// The band this pair was judged against.
    pub band: f64,
    /// Whether the pair agrees within its band (CI-widened when one
    /// side is Monte-Carlo).
    pub agrees: bool,
    /// The three worst per-site latch-probability gaps, largest first.
    pub worst_sites: Vec<SiteDivergence>,
}

/// The full agreement report over every engine that ran.
#[derive(Debug, Clone)]
pub struct AgreementReport {
    /// Circuit name.
    pub circuit: String,
    /// The estimates, in [`EngineKind::ALL`] order (exact last, absent
    /// when infeasible).
    pub estimates: Vec<SerEstimate>,
    /// Every pairwise verdict.
    pub pairs: Vec<PairVerdict>,
    /// Whether the exhaustive oracle participated.
    pub exact_included: bool,
    /// The bands used.
    pub bands: ToleranceBands,
}

impl AgreementReport {
    /// Whether every pair agrees within its band.
    pub fn agrees(&self) -> bool {
        self.pairs.iter().all(|p| p.agrees)
    }

    /// The pairs that diverged past their band.
    pub fn divergent(&self) -> Vec<&PairVerdict> {
        self.pairs.iter().filter(|p| !p.agrees).collect()
    }

    /// The estimate produced by one engine, if it ran.
    pub fn estimate(&self, kind: EngineKind) -> Option<&SerEstimate> {
        self.estimates.iter().find(|e| e.engine == kind)
    }

    /// Human-readable multi-line report: every pair's verdict, and for
    /// each diverging pair the worst per-site gaps.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let verdict = if self.agrees() { "AGREE" } else { "DIVERGE" };
        out.push_str(&format!(
            "agreement {}: {} engines ({}) — {}\n",
            self.circuit,
            self.estimates.len(),
            self.estimates
                .iter()
                .map(|e| e.engine.name())
                .collect::<Vec<_>>()
                .join(", "),
            verdict
        ));
        for e in &self.estimates {
            match e.ser_ci {
                Some((lo, hi)) => out.push_str(&format!(
                    "  {:<10} SER {:.4e} [{:.4e}, {:.4e}]\n",
                    e.engine.name(),
                    e.ser,
                    lo,
                    hi
                )),
                None => out.push_str(&format!("  {:<10} SER {:.4e}\n", e.engine.name(), e.ser)),
            }
        }
        for p in &self.pairs {
            out.push_str(&format!(
                "  {} vs {}: gap {:.1}% (band {:.1}%) — {}\n",
                p.a,
                p.b,
                p.gap * 100.0,
                p.band * 100.0,
                if p.agrees { "agree" } else { "DIVERGE" }
            ));
            if !p.agrees {
                for s in &p.worst_sites {
                    out.push_str(&format!(
                        "    {}: {:.4} vs {:.4} (gap {:.4})\n",
                        s.name,
                        s.p_a,
                        s.p_b,
                        s.gap()
                    ));
                }
            }
        }
        out
    }
}

/// Relative gap between two SER totals (0 when both are 0).
fn relative_gap(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// The three worst per-site latch-probability gaps between two
/// estimates, restricted to gates with a positive raw rate (gates no
/// engine can be struck at — markers, constants — carry no signal).
fn worst_sites(
    circuit: &Circuit,
    config: &SerConfig,
    a: &SerEstimate,
    b: &SerEstimate,
) -> Vec<SiteDivergence> {
    let mut sites: Vec<SiteDivergence> = circuit
        .iter()
        .filter(|&(id, _)| config.rates.rate(circuit, id) > 0.0)
        .map(|(id, gate)| SiteDivergence {
            gate: id,
            name: gate.name().to_string(),
            p_a: a.site_p[id.index()],
            p_b: b.site_p[id.index()],
        })
        .collect();
    sites.sort_by(|x, y| y.gap().total_cmp(&x.gap()));
    sites.truncate(3);
    sites
}

/// Judges one pair: a deterministic pair compares relative gaps; a
/// pair with a Monte-Carlo side checks the deterministic value against
/// the campaign's tolerance-widened Wilson interval.
fn judge_pair(
    circuit: &Circuit,
    config: &SerConfig,
    a: &SerEstimate,
    b: &SerEstimate,
    bands: &ToleranceBands,
) -> PairVerdict {
    let exact_side = a.engine == EngineKind::Exact || b.engine == EngineKind::Exact;
    let band = if a.ser_ci.is_some() || b.ser_ci.is_some() {
        bands.sampled_pair
    } else if exact_side {
        bands.exact_pair
    } else {
        bands.deterministic_pair
    };
    let gap = relative_gap(a.ser, b.ser);
    let agrees = match (a.ser_ci, b.ser_ci) {
        (Some(ci), None) => inside_widened(b.ser, ci, band),
        (None, Some(ci)) => inside_widened(a.ser, ci, band),
        // Two sampled engines never meet today (there is one
        // Monte-Carlo engine); compare the usual relative way.
        _ => gap <= band,
    };
    PairVerdict {
        a: a.engine,
        b: b.engine,
        ser_a: a.ser,
        ser_b: b.ser,
        gap,
        band,
        agrees,
        worst_sites: worst_sites(circuit, config, a, b),
    }
}

/// Runs the agreement oracle: analytic, propagation-probability and
/// Monte-Carlo always; the exhaustive oracle too when the enumeration
/// fits under `exact.max_source_bits`. Every pair of engines that ran
/// is judged against [`ToleranceBands`].
///
/// # Errors
///
/// [`EstimateError`] from any engine (the exact engine's
/// [`EstimateError::TooLarge`] is *not* an error here — the oracle is
/// simply skipped).
pub fn check_agreement(
    circuit: &Circuit,
    config: &SerConfig,
    campaign: &MonteCarloEstimator,
    bands: ToleranceBands,
) -> Result<AgreementReport, EstimateError> {
    let mut estimates = vec![
        AnalyticEstimator.estimate(circuit, config)?,
        campaign.estimate(circuit, config)?,
        PropProbEstimator.estimate(circuit, config)?,
    ];
    let exact = ExactEstimator::default();
    let exact_included =
        ser_engine::exact_feasible(circuit, config.sim.frames, exact.max_source_bits);
    if exact_included {
        estimates.push(exact.estimate(circuit, config)?);
    }
    // Sampled in-loop sanity audit (PR 4/5 pattern): every estimate's
    // per-site probabilities must be probabilities. A violation here
    // is an estimator bug, not a tolerance question.
    #[cfg(debug_assertions)]
    for e in &estimates {
        for (i, &p) in e.site_p.iter().enumerate() {
            debug_assert!(
                (-1e-9..=1.0 + 1e-9).contains(&p),
                "{}: site {i} latch probability {p} outside [0, 1]",
                e.engine
            );
        }
    }
    let mut pairs = Vec::new();
    for i in 0..estimates.len() {
        for j in (i + 1)..estimates.len() {
            pairs.push(judge_pair(
                circuit,
                config,
                &estimates[i],
                &estimates[j],
                &bands,
            ));
        }
    }
    Ok(AgreementReport {
        circuit: circuit.name().to_string(),
        estimates,
        pairs,
        exact_included,
        bands,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn sample_circuits_agree_three_ways() {
        for (name, c, phi) in [
            ("s27", samples::s27_like(), 30),
            ("fig1", samples::fig1_like(), 25),
        ] {
            let mut config = SerConfig::small(phi);
            // Few enough frames that the exhaustive oracle fits under
            // its source-bit cap on both samples.
            config.sim.frames = 3;
            let mc = MonteCarloEstimator::new(30_000);
            let report = check_agreement(&c, &config, &mc, ToleranceBands::default()).unwrap();
            assert!(report.agrees(), "{name} diverged:\n{}", report.summary());
            assert!(report.estimates.len() >= 3);
            // Small samples fit the exhaustive oracle too.
            assert!(report.exact_included, "{name} should enumerate");
            assert_eq!(report.estimates.len(), 4);
            assert_eq!(report.pairs.len(), 6);
            assert!(report.summary().contains("AGREE"));
        }
    }

    #[test]
    fn verdicts_cover_every_pair_once() {
        let c = samples::s27_like();
        let config = SerConfig::small(30);
        let report = check_agreement(
            &c,
            &config,
            &MonteCarloEstimator::new(5_000),
            ToleranceBands::default(),
        )
        .unwrap();
        for (i, p) in report.pairs.iter().enumerate() {
            assert_ne!(p.a, p.b);
            for q in &report.pairs[i + 1..] {
                assert!(
                    !(p.a == q.a && p.b == q.b),
                    "duplicate pair {} {}",
                    p.a,
                    p.b
                );
            }
            assert!(p.worst_sites.len() <= 3);
            for w in &p.worst_sites {
                assert!(w.gap() >= 0.0);
            }
        }
    }

    #[test]
    fn zero_band_flags_sampling_noise() {
        // With zero tolerance and a tiny campaign, at least one pair
        // should diverge — proving the verdict logic can say no.
        let c = samples::fig1_like();
        let config = SerConfig::small(25);
        let report = check_agreement(
            &c,
            &config,
            &MonteCarloEstimator::new(200),
            ToleranceBands::uniform(0.0),
        )
        .unwrap();
        assert!(
            !report.divergent().is_empty(),
            "zero band over 200 injections should flag noise:\n{}",
            report.summary()
        );
        assert!(report.summary().contains("DIVERGE"));
    }
}
