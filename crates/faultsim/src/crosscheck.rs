//! Cross-validation of the analytic SER model against a Monte-Carlo
//! campaign.
//!
//! The analytic model ([`ser_engine::analyze`], the paper's eq. (4))
//! and the campaign estimate the same quantity from independent
//! machinery: the analytic side multiplies backward-composed ODC
//! observabilities by exact ELW fractions; the campaign counts
//! individually propagated strikes. Agreement therefore exercises the
//! simulator, the ODC composition, the ELW computation and the rate
//! model at once.
//!
//! Two deliberate sources of disagreement remain, and the comparison
//! accounts for both:
//!
//! * **Sampling noise** — handled by the campaign's Wilson intervals.
//! * **ODC reconvergence error** — the backward ODC composition is an
//!   approximation on reconvergent fanout (see [`ser_engine::odc`]); the
//!   campaign propagates each fault exactly, so per-site divergence
//!   *is the approximation error*, not a bug. The `tolerance` knob
//!   widens the intervals by a relative margin to absorb it; sites
//!   flagged beyond the widened interval are reported for inspection.

use netlist::Circuit;
use netlist::GateId;
use ser_engine::SerReport;

use crate::campaign::CampaignResult;

/// Default relative tolerance absorbing the ODC reconvergence
/// approximation when comparing analytic and empirical values.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// One site's analytic-vs-empirical comparison.
#[derive(Debug, Clone)]
pub struct SiteComparison {
    /// The struck gate.
    pub gate: GateId,
    /// Its name in the netlist.
    pub name: String,
    /// Analytic latch probability `obs(g) · |ELW(g)|/Φ`.
    pub analytic_p: f64,
    /// Empirical latch probability `latches / trials`.
    pub empirical_p: f64,
    /// Wilson interval on the empirical probability.
    pub ci: (f64, f64),
    /// Strikes drawn at the site.
    pub trials: u64,
    /// Whether the analytic value falls inside the tolerance-widened
    /// interval.
    pub within: bool,
}

/// The full comparison report.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// Circuit name.
    pub circuit: String,
    /// Campaign size.
    pub injections: u64,
    /// Relative tolerance used to widen intervals.
    pub tolerance: f64,
    /// Critical value of the intervals.
    pub z: f64,
    /// Total SER from [`ser_engine::analyze`].
    pub analytic_ser: f64,
    /// Total SER from the campaign.
    pub empirical_ser: f64,
    /// Confidence interval on the empirical SER.
    pub ser_ci: (f64, f64),
    /// Whether the analytic total falls inside the tolerance-widened
    /// empirical interval.
    pub ser_agrees: bool,
    /// Per-site comparisons, in site order.
    pub sites: Vec<SiteComparison>,
}

impl CrossCheck {
    /// Compares an analytic report with a campaign over the same
    /// circuit and configuration, widening intervals by the relative
    /// `tolerance`.
    pub fn compare(
        circuit: &Circuit,
        report: &SerReport,
        campaign: &CampaignResult,
        tolerance: f64,
    ) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let sites: Vec<SiteComparison> = campaign
            .sites
            .iter()
            .map(|s| {
                let analytic_p = report.obs[s.gate.index()] * report.elw_fraction(s.gate);
                let empirical_p = s.latch_probability();
                let ci = s.latch_ci(campaign.z);
                let within = inside_widened(analytic_p, ci, tolerance);
                SiteComparison {
                    gate: s.gate,
                    name: circuit.gate(s.gate).name().to_string(),
                    analytic_p,
                    empirical_p,
                    ci,
                    trials: s.trials,
                    within,
                }
            })
            .collect();
        let ser_ci = campaign.ser_ci();
        Self {
            circuit: campaign.circuit.clone(),
            injections: campaign.injections,
            tolerance,
            z: campaign.z,
            analytic_ser: report.ser,
            empirical_ser: campaign.ser(),
            ser_ci,
            ser_agrees: inside_widened(report.ser, ser_ci, tolerance),
            sites,
        }
    }

    /// The sites whose analytic probability falls outside the widened
    /// interval (the ODC approximation's worst offenders).
    pub fn divergent(&self) -> Vec<&SiteComparison> {
        self.sites.iter().filter(|s| !s.within).collect()
    }

    /// Relative gap `|analytic − empirical| / max(analytic, empirical)`
    /// between the SER totals (`0` when both are zero).
    pub fn ser_gap(&self) -> f64 {
        let denom = self.analytic_ser.max(self.empirical_ser);
        if denom == 0.0 {
            0.0
        } else {
            (self.analytic_ser - self.empirical_ser).abs() / denom
        }
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let verdict = if self.ser_agrees { "AGREE" } else { "DIVERGE" };
        out.push_str(&format!(
            "cross-check {}: {} injections, tol {:.0}%\n",
            self.circuit,
            self.injections,
            self.tolerance * 100.0
        ));
        out.push_str(&format!(
            "  SER analytic {:.4e} vs empirical {:.4e} [{:.4e}, {:.4e}] — {} (gap {:.1}%)\n",
            self.analytic_ser,
            self.empirical_ser,
            self.ser_ci.0,
            self.ser_ci.1,
            verdict,
            self.ser_gap() * 100.0
        ));
        let divergent = self.divergent();
        out.push_str(&format!(
            "  sites: {}/{} within widened CI\n",
            self.sites.len() - divergent.len(),
            self.sites.len()
        ));
        for s in divergent {
            out.push_str(&format!(
                "    {}: analytic {:.4} vs empirical {:.4} [{:.4}, {:.4}] over {} trials\n",
                s.name, s.analytic_p, s.empirical_p, s.ci.0, s.ci.1, s.trials
            ));
        }
        out
    }
}

/// Whether `value` lies inside `ci` widened by `tolerance` relative to
/// `value` itself (plus a small absolute floor so exact zeros compare).
/// Shared with the three-way agreement oracle in [`crate::agreement`].
pub(crate) fn inside_widened(value: f64, ci: (f64, f64), tolerance: f64) -> bool {
    let margin = tolerance * value.abs() + 1e-12;
    value >= ci.0 - margin && value <= ci.1 + margin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use netlist::samples;
    use ser_engine::{analyze, SerConfig};

    #[test]
    fn widened_interval_logic() {
        assert!(inside_widened(0.5, (0.4, 0.6), 0.0));
        assert!(!inside_widened(0.7, (0.4, 0.6), 0.0));
        // 10% of 0.7 = 0.07 margin reaches the upper bound 0.63 + ... no:
        // 0.7 - 0.07 = 0.63 > 0.6, still outside; 20% brings it in.
        assert!(!inside_widened(0.7, (0.4, 0.6), 0.1));
        assert!(inside_widened(0.7, (0.4, 0.6), 0.2));
        assert!(inside_widened(0.0, (0.0, 0.1), 0.0));
    }

    #[test]
    fn cross_check_reports_all_sites() {
        let c = samples::s27_like();
        let ser = SerConfig::small(30);
        let report = analyze(&c, &ser).unwrap();
        let campaign = run_campaign(&c, &ser, &CampaignConfig::new(20_000).with_seed(5)).unwrap();
        let check = CrossCheck::compare(&c, &report, &campaign, DEFAULT_TOLERANCE);
        assert_eq!(check.sites.len(), campaign.sites.len());
        assert!(check.summary().contains("cross-check"));
        assert!(check.ser_gap() >= 0.0);
        for s in &check.sites {
            assert!(!s.name.is_empty());
            assert!((0.0..=1.0).contains(&s.analytic_p) || s.analytic_p > 1.0);
        }
    }
}
