//! The Monte-Carlo implementation of [`ser_engine::SerEstimator`] —
//! the fourth engine behind the suite's one estimation front door.
//!
//! Wraps a fault-injection campaign: the SER estimate is
//! `total_rate × latches/injections`, per-gate observabilities are the
//! per-site empirical hit fractions, and (uniquely among the engines)
//! the estimate carries a Wilson confidence interval, which the
//! agreement oracle uses instead of a fixed relative band.

use netlist::Circuit;
use ser_engine::{EngineKind, EstimateError, SerConfig, SerEstimate, SerEstimator};

use crate::campaign::{run_campaign, CampaignConfig};

/// Monte-Carlo SER estimation behind the [`SerEstimator`] front door.
#[derive(Debug, Clone)]
pub struct MonteCarloEstimator {
    /// The campaign to run (injections, seed, workers, pulse width).
    pub campaign: CampaignConfig,
}

impl MonteCarloEstimator {
    /// An estimator drawing `injections` strikes with campaign
    /// defaults.
    pub fn new(injections: u64) -> Self {
        Self {
            campaign: CampaignConfig::new(injections),
        }
    }
}

impl SerEstimator for MonteCarloEstimator {
    fn kind(&self) -> EngineKind {
        EngineKind::MonteCarlo
    }

    fn estimate(
        &self,
        circuit: &Circuit,
        config: &SerConfig,
    ) -> Result<SerEstimate, EstimateError> {
        let result = run_campaign(circuit, config, &self.campaign).map_err(EstimateError::from)?;
        let mut obs = vec![0.0; circuit.len()];
        let mut site_p = vec![0.0; circuit.len()];
        for s in &result.sites {
            obs[s.gate.index()] = s.empirical_obs();
            site_p[s.gate.index()] = s.latch_probability();
        }
        let report = ser_engine::EngineReport {
            threads: result.workers,
            ..ser_engine::EngineReport::default()
        };
        Ok(SerEstimate {
            engine: EngineKind::MonteCarlo,
            ser: result.ser(),
            ser_ci: Some(result.ser_ci()),
            obs,
            site_p,
            phi: result.phi,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::samples;

    #[test]
    fn estimate_matches_the_campaign_it_wraps() {
        let c = samples::s27_like();
        let ser = SerConfig::small(30);
        let est = MonteCarloEstimator::new(20_000);
        let e = est.estimate(&c, &ser).unwrap();
        let direct = run_campaign(&c, &ser, &est.campaign).unwrap();
        assert_eq!(e.engine, EngineKind::MonteCarlo);
        assert_eq!(e.ser, direct.ser());
        assert_eq!(e.ser_ci, Some(direct.ser_ci()));
        assert_eq!(e.phi, direct.phi);
        let (lo, hi) = e.ser_ci.unwrap();
        assert!(lo <= e.ser && e.ser <= hi);
        // Per-site values land where the campaign put them.
        for s in &direct.sites {
            assert_eq!(e.obs[s.gate.index()], s.empirical_obs());
            assert_eq!(e.site_p[s.gate.index()], s.latch_probability());
        }
    }
}
